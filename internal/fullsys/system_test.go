package fullsys

import (
	"testing"

	"repro/internal/sim"
)

// loopback is a test network: fixed-latency, order-preserving
// delivery. It validates the protocol independent of the NoC.
type loopback struct {
	sys     *System
	latency sim.Cycle
	pending []pendingMsg
	head    int
	count   uint64
}

type pendingMsg struct {
	at sim.Cycle
	m  Msg
}

func (lb *loopback) send(m Msg, at sim.Cycle) {
	lb.pending = append(lb.pending, pendingMsg{at: at + lb.latency, m: m})
	lb.count++
}

// deliverDue hands over messages due at or before now. Messages are
// kept in send order; fixed latency preserves it.
func (lb *loopback) deliverDue(now sim.Cycle) {
	// Fixed latency means due messages form a prefix in send order.
	for lb.head < len(lb.pending) && lb.pending[lb.head].at <= now {
		p := lb.pending[lb.head]
		lb.pending[lb.head] = pendingMsg{}
		lb.head++
		lb.sys.Deliver(p.m, p.at)
	}
	if lb.head == len(lb.pending) {
		lb.pending = lb.pending[:0]
		lb.head = 0
	}
}

// runSystem builds a system over the workload and runs it to
// completion (or the cycle limit), checking coherence periodically.
func runSystem(t *testing.T, cfg Config, wl Workload, limit int) *System {
	t.Helper()
	lb := &loopback{latency: 10}
	sys, err := New(cfg, wl, lb.send)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	lb.sys = sys
	for cyc := 0; cyc < limit; cyc++ {
		now := sim.Cycle(cyc)
		sys.Tick(now)
		lb.deliverDue(now)
		if cyc%64 == 0 {
			if err := sys.CheckCoherence(); err != nil {
				t.Fatalf("cycle %d: %v", cyc, err)
			}
		}
		if sys.Done() {
			if err := sys.CheckCoherence(); err != nil {
				t.Fatalf("final: %v", err)
			}
			return sys
		}
	}
	t.Fatalf("system did not finish within %d cycles", limit)
	return nil
}

func addr(line uint64) uint64 { return line << LineShift }

func TestStoreLoadRoundTripSingleCore(t *testing.T) {
	wl := NewScript([][]Op{{
		{Kind: OpStore, Addr: addr(100), Arg: 0xdead},
		{Kind: OpLoad, Addr: addr(100)}, // forwarded from store buffer
		{Kind: OpCompute, Arg: 200},     // let the store drain
		{Kind: OpLoad, Addr: addr(100)}, // from L1 (M)
	}})
	runSystem(t, DefaultConfig(1), wl, 5000)
	got := wl.Observed(0)
	if len(got) != 2 || got[0] != 0xdead || got[1] != 0xdead {
		t.Fatalf("observed %v, want [0xdead 0xdead]", got)
	}
}

func TestColdLoadReturnsZeroAndExclusive(t *testing.T) {
	wl := NewScript([][]Op{{
		{Kind: OpLoad, Addr: addr(7)},
	}})
	sys := runSystem(t, DefaultConfig(4), wl, 5000)
	if got := wl.Observed(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("cold load observed %v, want [0]", got)
	}
	// MESI: sole reader should hold the line in E.
	if w := sys.Tile(0).l1.probe(7); w == nil || w.state != l1Exclusive {
		t.Fatalf("sole reader should hold E, got %+v", w)
	}
}

func TestProducerConsumer(t *testing.T) {
	// Core 0 stores, both barrier, core 1 loads the stored value.
	wl := NewScript([][]Op{
		{
			{Kind: OpStore, Addr: addr(50), Arg: 777},
			{Kind: OpBarrier, Arg: 1},
		},
		{
			{Kind: OpBarrier, Arg: 1},
			{Kind: OpLoad, Addr: addr(50)},
		},
	})
	runSystem(t, DefaultConfig(2), wl, 20000)
	if got := wl.Observed(1); len(got) != 1 || got[0] != 777 {
		t.Fatalf("consumer observed %v, want [777]", got)
	}
}

func TestSharedReadersThenWriter(t *testing.T) {
	// Cores 1..3 read line 9 (S everywhere), then after a barrier core
	// 0 writes it (invalidations), then everyone reads the new value.
	mk := func(core int) []Op {
		ops := []Op{
			{Kind: OpLoad, Addr: addr(9)},
			{Kind: OpBarrier, Arg: 1},
		}
		if core == 0 {
			ops = append(ops, Op{Kind: OpStore, Addr: addr(9), Arg: 42})
		}
		ops = append(ops,
			Op{Kind: OpBarrier, Arg: 2},
			Op{Kind: OpLoad, Addr: addr(9)},
		)
		return ops
	}
	wl := NewScript([][]Op{mk(0), mk(1), mk(2), mk(3)})
	runSystem(t, DefaultConfig(4), wl, 50000)
	for core := 0; core < 4; core++ {
		got := wl.Observed(core)
		if len(got) != 2 {
			t.Fatalf("core %d observed %v", core, got)
		}
		if got[0] != 0 {
			t.Errorf("core %d first read %d, want 0", core, got[0])
		}
		if got[1] != 42 {
			t.Errorf("core %d second read %d, want 42 (store lost?)", core, got[1])
		}
	}
}

func TestAtomicCounterAllCores(t *testing.T) {
	// The canonical coherence stress: every core atomically increments
	// the same line k times; the final count must be exact.
	const cores, incs = 8, 25
	ops := make([][]Op, cores)
	for c := range ops {
		for i := 0; i < incs; i++ {
			ops[c] = append(ops[c], Op{Kind: OpAtomic, Addr: addr(3), Arg: 1})
		}
		ops[c] = append(ops[c],
			Op{Kind: OpBarrier, Arg: 9},
			Op{Kind: OpLoad, Addr: addr(3)},
		)
	}
	wl := NewScript(ops)
	runSystem(t, DefaultConfig(cores), wl, 300000)
	for c := 0; c < cores; c++ {
		got := wl.Observed(c)
		final := got[len(got)-1]
		if final != cores*incs {
			t.Fatalf("core %d sees final count %d, want %d", c, final, cores*incs)
		}
	}
}

func TestMigratoryOwnership(t *testing.T) {
	// Each core in turn increments the line; barriers force strict
	// alternation so M ownership migrates core to core.
	const cores = 4
	ops := make([][]Op, cores)
	bar := uint64(1)
	for round := 0; round < cores; round++ {
		for c := 0; c < cores; c++ {
			if c == round {
				ops[c] = append(ops[c], Op{Kind: OpAtomic, Addr: addr(5), Arg: 10})
			}
			ops[c] = append(ops[c], Op{Kind: OpBarrier, Arg: bar})
		}
		bar++
	}
	for c := 0; c < cores; c++ {
		ops[c] = append(ops[c], Op{Kind: OpLoad, Addr: addr(5)})
	}
	wl := NewScript(ops)
	runSystem(t, DefaultConfig(cores), wl, 100000)
	for c := 0; c < cores; c++ {
		got := wl.Observed(c)
		if final := got[len(got)-1]; final != 40 {
			t.Fatalf("core %d final %d, want 40", c, final)
		}
	}
}

func TestL1EvictionWritebackPreservesData(t *testing.T) {
	// Write more lines than the L1 holds, then read them all back;
	// dirty victims must round-trip through L2/memory.
	cfg := DefaultConfig(2)
	cfg.L1Sets = 4
	cfg.L1Ways = 2 // 8-line L1
	var ops []Op
	const lines = 64
	for i := uint64(0); i < lines; i++ {
		ops = append(ops, Op{Kind: OpStore, Addr: addr(i), Arg: 1000 + i})
	}
	ops = append(ops, Op{Kind: OpCompute, Arg: 2000}) // drain
	for i := uint64(0); i < lines; i++ {
		ops = append(ops, Op{Kind: OpLoad, Addr: addr(i)})
	}
	wl := NewScript([][]Op{ops, nil})
	runSystem(t, cfg, wl, 400000)
	got := wl.Observed(0)
	if len(got) != lines {
		t.Fatalf("observed %d loads, want %d", len(got), lines)
	}
	for i := uint64(0); i < lines; i++ {
		if got[i] != 1000+i {
			t.Fatalf("line %d read back %d, want %d", i, got[i], 1000+i)
		}
	}
}

func TestTinyL2VictimBuffer(t *testing.T) {
	// A 4-line L2 bank forces constant dirty evictions; the victim
	// buffer must keep reads consistent with in-flight writebacks.
	cfg := DefaultConfig(2)
	cfg.L2Lines = 4
	cfg.L1Sets = 2
	cfg.L1Ways = 2
	var ops []Op
	const lines = 32
	for i := uint64(0); i < lines; i++ {
		ops = append(ops, Op{Kind: OpStore, Addr: addr(i * 2), Arg: 7000 + i})
	}
	ops = append(ops, Op{Kind: OpCompute, Arg: 4000})
	for i := uint64(0); i < lines; i++ {
		ops = append(ops, Op{Kind: OpLoad, Addr: addr(i * 2)})
	}
	wl := NewScript([][]Op{ops, nil})
	runSystem(t, cfg, wl, 1000000)
	got := wl.Observed(0)
	for i := uint64(0); i < lines; i++ {
		if got[i] != 7000+i {
			t.Fatalf("line %d read back %d, want %d", i*2, got[i], 7000+i)
		}
	}
}

func TestBarrierReleasesAllCores(t *testing.T) {
	const cores = 16
	ops := make([][]Op, cores)
	for c := range ops {
		ops[c] = []Op{
			{Kind: OpCompute, Arg: uint64(1 + c*17)}, // staggered arrival
			{Kind: OpBarrier, Arg: 4},
			{Kind: OpBarrier, Arg: 5},
		}
	}
	sys := runSystem(t, DefaultConfig(cores), NewScript(ops), 100000)
	for c := 0; c < cores; c++ {
		if sys.Tile(c).Stats().Barriers != 2 {
			t.Errorf("core %d passed %d barriers, want 2", c, sys.Tile(c).Stats().Barriers)
		}
	}
}

func TestFalseSharingStoreInterleave(t *testing.T) {
	// Two cores repeatedly store to the same line (token granularity):
	// SWMR must hold throughout, and the final token must be one of
	// the two stored values.
	ops := [][]Op{nil, nil}
	for i := 0; i < 30; i++ {
		ops[0] = append(ops[0], Op{Kind: OpStore, Addr: addr(11), Arg: 1})
		ops[1] = append(ops[1], Op{Kind: OpStore, Addr: addr(11), Arg: 2})
	}
	for c := range ops {
		ops[c] = append(ops[c],
			Op{Kind: OpBarrier, Arg: 1},
			Op{Kind: OpLoad, Addr: addr(11)})
	}
	wl := NewScript(ops)
	runSystem(t, DefaultConfig(2), wl, 200000)
	v0 := wl.Observed(0)[len(wl.Observed(0))-1]
	v1 := wl.Observed(1)[len(wl.Observed(1))-1]
	if v0 != v1 {
		t.Fatalf("cores disagree after barrier: %d vs %d", v0, v1)
	}
	if v0 != 1 && v0 != 2 {
		t.Fatalf("final token %d is neither store's value", v0)
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.StoreBuf = 2
	var ops []Op
	for i := uint64(0); i < 20; i++ {
		// Distinct lines homed remotely so each store takes a while.
		ops = append(ops, Op{Kind: OpStore, Addr: addr(i*2 + 1), Arg: i})
	}
	wl := NewScript([][]Op{ops, nil})
	sys := runSystem(t, cfg, wl, 200000)
	if sys.Tile(0).Stats().SBStall == 0 {
		t.Error("a 2-entry store buffer under 20 remote stores should stall at least once")
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (sim.Cycle, uint64) {
		ops := make([][]Op, 4)
		for c := range ops {
			for i := 0; i < 20; i++ {
				ops[c] = append(ops[c],
					Op{Kind: OpAtomic, Addr: addr(uint64(i % 3)), Arg: 1},
					Op{Kind: OpLoad, Addr: addr(uint64(c*10 + i))},
					Op{Kind: OpStore, Addr: addr(uint64(c*10 + i)), Arg: uint64(i)},
				)
			}
		}
		wl := NewScript(ops)
		sys := runSystem(t, DefaultConfig(4), wl, 400000)
		return sys.FinishCycle(), sys.MsgsSent()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("nondeterministic execution: (%v,%d) vs (%v,%d)", c1, m1, c2, m2)
	}
}

func TestDetailedDRAMModelCorrectness(t *testing.T) {
	// The bank-level memory model must preserve data correctness and
	// produce row-locality statistics.
	cfg := DefaultConfig(4)
	cfg.MemModel = "ddr"
	cfg.L1Sets = 4
	cfg.L1Ways = 2
	cfg.L2Lines = 8 // force constant memory traffic
	var ops []Op
	const lines = 48
	for i := uint64(0); i < lines; i++ {
		ops = append(ops, Op{Kind: OpStore, Addr: addr(i), Arg: 5000 + i})
	}
	ops = append(ops, Op{Kind: OpCompute, Arg: 5000})
	for i := uint64(0); i < lines; i++ {
		ops = append(ops, Op{Kind: OpLoad, Addr: addr(i)})
	}
	wl := NewScript([][]Op{ops, nil, nil, nil})
	sys := runSystem(t, cfg, wl, 2_000_000)
	got := wl.Observed(0)
	for i := uint64(0); i < lines; i++ {
		if got[i] != 5000+i {
			t.Fatalf("line %d read back %d, want %d", i, got[i], 5000+i)
		}
	}
	st := sys.DRAMStats()
	if st.Reads == 0 || st.Writes == 0 {
		t.Errorf("detailed MC unused: %+v", st)
	}
	if st.AvgLatency <= 0 {
		t.Error("no latency recorded")
	}
}

func TestDRAMSlowerThanGenerousFixed(t *testing.T) {
	// With a generous fixed latency, the detailed model (row conflicts,
	// bank contention) should not be faster end to end for a
	// memory-hostile pattern; this pins the models apart.
	base := DefaultConfig(2)
	base.L1Sets = 2
	base.L1Ways = 2
	base.L2Lines = 4
	base.MemLat = 20 // generous fixed latency
	var ops []Op
	for i := uint64(0); i < 64; i++ {
		ops = append(ops, Op{Kind: OpLoad, Addr: addr(i * 1024)}) // same bank, new row
	}
	run := func(model string) sim.Cycle {
		cfg := base
		cfg.MemModel = model
		wl := NewScript([][]Op{ops, nil})
		sys := runSystem(t, cfg, wl, 2_000_000)
		return sys.FinishCycle()
	}
	fixed := run("fixed")
	ddr := run("ddr")
	if ddr <= fixed {
		t.Errorf("row-conflict pattern: ddr=%d should exceed generous fixed=%d", ddr, fixed)
	}
}

func TestUnknownMemModelRejected(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MemModel = "weird"
	if _, err := New(cfg, NewScript(nil), func(Msg, sim.Cycle) {}); err == nil {
		t.Fatal("unknown memory model should be rejected")
	}
}

func TestPrefetcherCorrectAndCounted(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.PrefetchDegree = 2
	cfg.PrefetchMax = 4
	// A streaming read of sequential lines: prefetches should cover
	// most of them, and every value must still be exact.
	var ops []Op
	const lines = 64
	for i := uint64(0); i < lines; i++ {
		ops = append(ops, Op{Kind: OpStore, Addr: addr(i), Arg: 4000 + i})
	}
	ops = append(ops, Op{Kind: OpCompute, Arg: 3000})
	for i := uint64(0); i < lines; i++ {
		ops = append(ops, Op{Kind: OpLoad, Addr: addr(i)}, Op{Kind: OpCompute, Arg: 20})
	}
	// A tiny L1 forces the read stream to miss, exercising the
	// prefetcher; values round-trip through L2.
	cfg.L1Sets = 4
	cfg.L1Ways = 2
	wl := NewScript([][]Op{ops, nil})
	sys := runSystem(t, cfg, wl, 1_000_000)
	got := wl.Observed(0)
	for i := uint64(0); i < lines; i++ {
		if got[i] != 4000+i {
			t.Fatalf("line %d read back %d, want %d", i, got[i], 4000+i)
		}
	}
	st := sys.Tile(0).Stats()
	if st.PrefIssued == 0 {
		t.Fatal("prefetcher idle on a streaming pattern")
	}
	if st.PrefUseful == 0 {
		t.Fatal("no useful prefetches on a streaming pattern")
	}
	t.Logf("prefetches issued=%d useful=%d", st.PrefIssued, st.PrefUseful)
}

func TestPrefetcherRandomSoakStillCoherent(t *testing.T) {
	wl := newRandomWorkload(4, 200, 77)
	cfg := DefaultConfig(4)
	cfg.PrefetchDegree = 2
	cfg.L1Sets = 4
	cfg.L1Ways = 2
	sys := runSystem(t, cfg, wl, 3_000_000)
	if len(wl.errs) > 0 {
		t.Fatalf("data errors with prefetching: %s", wl.errs[0])
	}
	var want uint64
	for _, n := range wl.incs {
		want += n
	}
	for c := 0; c < 4; c++ {
		if wl.lastLoad[c] != want {
			t.Fatalf("counter %d != %d with prefetching", wl.lastLoad[c], want)
		}
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsTable(t *testing.T) {
	wl := NewScript([][]Op{{
		{Kind: OpStore, Addr: addr(1), Arg: 5},
		{Kind: OpLoad, Addr: addr(200)},
	}, nil})
	sys := runSystem(t, DefaultConfig(2), wl, 50000)
	tb := sys.StatsTable("test")
	if len(tb.Rows) < 5 {
		t.Fatalf("stats table too small: %d rows", len(tb.Rows))
	}
	if tb.Rows[0][0] != "retired ops" {
		t.Errorf("first row = %v", tb.Rows[0])
	}
}

func TestMsgsByType(t *testing.T) {
	wl := NewScript([][]Op{{
		{Kind: OpStore, Addr: addr(3), Arg: 9}, // remote home -> GetM
		{Kind: OpLoad, Addr: addr(5)},          // remote home -> GetS
	}, nil})
	sys := runSystem(t, DefaultConfig(2), wl, 50000)
	byType := sys.MsgsByType()
	if byType[GetS] == 0 || byType[GetM] == 0 {
		t.Errorf("request counters missing: %v", byType)
	}
	if byType[DataE]+byType[DataM]+byType[DataS] == 0 {
		t.Errorf("no data responses counted: %v", byType)
	}
	var total uint64
	for _, c := range byType {
		total += c
	}
	if total != sys.MsgsSent() {
		t.Errorf("per-type sum %d != total %d", total, sys.MsgsSent())
	}
}
