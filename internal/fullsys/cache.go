package fullsys

import "fmt"

// L1 line states.
const (
	l1Invalid uint8 = iota
	l1Shared
	l1Exclusive
	l1Modified
)

func l1StateName(s uint8) string {
	switch s {
	case l1Invalid:
		return "I"
	case l1Shared:
		return "S"
	case l1Exclusive:
		return "E"
	case l1Modified:
		return "M"
	}
	return fmt.Sprintf("state(%d)", s)
}

// l1Line is one L1 cache way.
type l1Line struct {
	line       uint64
	state      uint8
	pinned     bool // mid-transaction (e.g. S->M upgrade); not evictable
	prefetched bool // filled by the prefetcher, not yet demanded
	value      uint64
	lru        uint64
}

// l1Cache is a set-associative writeback L1 with true-LRU replacement.
//
// The set arrays support copy-on-write sharing with a fork: forkFrom
// aliases the backing arrays in both parties and marks them shared,
// and the first write to a set (any path that can mutate a way or
// hand out a way pointer) materializes a private copy. This makes a
// fork O(sets) pointer copies instead of an O(sets*ways) data copy —
// the L1 arrays are the bulk of a tile's state.
type l1Cache struct {
	sets    [][]l1Line
	shared  []bool //simlint:derived copy-on-write bookkeeping, re-seeded by every fork, never serialized
	nshared int    //simlint:derived count of set bits in shared, maintained alongside it
	setMask uint64
	tick    uint64

	hits, misses uint64
}

func newL1(sets, ways int) *l1Cache {
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("fullsys: L1 sets must be a power of two, got %d", sets))
	}
	c := &l1Cache{sets: make([][]l1Line, sets), setMask: uint64(sets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]l1Line, ways)
	}
	return c
}

func (c *l1Cache) set(line uint64) []l1Line { return c.sets[line&c.setMask] }

// ownSet returns line's set for writing, materializing a private copy
// first when the backing array is shared with a fork. Every path that
// can mutate a way — or return a way pointer a caller may mutate —
// must go through this, never set.
func (c *l1Cache) ownSet(line uint64) []l1Line {
	i := line & c.setMask
	if c.nshared != 0 && c.shared[i] {
		s := make([]l1Line, len(c.sets[i]))
		copy(s, c.sets[i])
		c.sets[i] = s
		c.shared[i] = false
		c.nshared--
	}
	return c.sets[i]
}

// ownAll drops every copy-on-write alias without preserving contents
// (for restores that overwrite every way).
func (c *l1Cache) ownAll() {
	if c.nshared == 0 {
		return
	}
	for i, sh := range c.shared {
		if sh {
			c.sets[i] = make([]l1Line, len(c.sets[i]))
			c.shared[i] = false
		}
	}
	c.nshared = 0
}

// lookup returns the way holding line, or nil. It refreshes LRU state
// on hit.
func (c *l1Cache) lookup(line uint64) *l1Line {
	for i := range c.ownSet(line) {
		w := &c.ownSet(line)[i]
		if w.state != l1Invalid && w.line == line {
			c.tick++
			w.lru = c.tick
			return w
		}
	}
	return nil
}

// probe is lookup without LRU update or hit accounting (for handlers
// that must not perturb replacement, e.g. invalidations).
func (c *l1Cache) probe(line uint64) *l1Line {
	for i := range c.ownSet(line) {
		w := &c.ownSet(line)[i]
		if w.state != l1Invalid && w.line == line {
			return w
		}
	}
	return nil
}

// victim selects the way to evict for an install of line: an invalid
// way if one exists, else the least-recently-used unpinned way. It
// returns nil when every way is pinned (caller must retry later).
func (c *l1Cache) victim(line uint64) *l1Line {
	set := c.ownSet(line)
	var lru *l1Line
	for i := range set {
		w := &set[i]
		if w.state == l1Invalid {
			return w
		}
		if w.pinned {
			continue
		}
		if lru == nil || w.lru < lru.lru {
			lru = w
		}
	}
	return lru
}

// install places line into the chosen way (which the caller obtained
// from victim and has already written back if needed).
func (c *l1Cache) install(w *l1Line, line uint64, state uint8, value uint64) {
	c.tick++
	*w = l1Line{line: line, state: state, value: value, lru: c.tick}
}

// countState reports how many lines are in the given state (testing
// and invariant checks).
func (c *l1Cache) countState(state uint8) int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].state == state {
				n++
			}
		}
	}
	return n
}

// l2Bank is one bank of the shared, non-inclusive L2 data cache with
// LRU replacement. The directory tracks ownership independently, so
// evicting data never requires recalling L1 copies; dirty victims are
// written back to memory through a victim buffer.
// The lines map supports copy-on-write sharing with a fork: forkFrom
// aliases the map (and its entries) in both parties, and the first
// mutating access materializes a private deep copy, making a fork
// O(1) for the bank.
type l2Bank struct {
	capacity int
	lines    map[uint64]*l2Line
	shared   bool //simlint:derived copy-on-write bookkeeping, re-seeded by every fork, never serialized
	tick     uint64

	hits, misses uint64
}

type l2Line struct {
	value uint64
	dirty bool
	lru   uint64
}

func newL2(capacity int) *l2Bank {
	return &l2Bank{capacity: capacity, lines: make(map[uint64]*l2Line)}
}

// own materializes a private copy of the lines map when it is shared
// with a fork. Every mutating path — including any that returns a
// line pointer a caller may write through — must call it first.
func (b *l2Bank) own() {
	if !b.shared {
		return
	}
	lines := make(map[uint64]*l2Line, len(b.lines))
	slab := make([]l2Line, 0, len(b.lines))
	//simlint:allow maprange map-to-map rebuild; insertion order immaterial
	for line, l := range b.lines {
		slab = append(slab, *l)
		lines[line] = &slab[len(slab)-1]
	}
	b.lines = lines
	b.shared = false
}

// get returns the bank's copy of line, refreshing LRU, or nil.
func (b *l2Bank) get(line uint64) *l2Line {
	b.own()
	l := b.lines[line]
	if l != nil {
		b.tick++
		l.lru = b.tick
	}
	return l
}

// put inserts or updates a line, evicting the LRU line if the bank is
// full. It returns the evicted line and its value if the victim was
// dirty and must be written back.
func (b *l2Bank) put(line uint64, value uint64, dirty bool) (evictedLine uint64, evictedValue uint64, writeback bool) {
	b.own()
	if l := b.lines[line]; l != nil {
		b.tick++
		l.value = value
		l.dirty = l.dirty || dirty
		l.lru = b.tick
		return 0, 0, false
	}
	if len(b.lines) >= b.capacity {
		var victim uint64
		var oldest uint64 = ^uint64(0)
		//simlint:allow maprange min scan with a total-order tie-break on (lru, line), so iteration order cannot change the victim
		for ln, l := range b.lines {
			if l.lru < oldest || (l.lru == oldest && ln < victim) {
				oldest = l.lru
				victim = ln
			}
		}
		v := b.lines[victim]
		delete(b.lines, victim)
		if v.dirty {
			evictedLine, evictedValue, writeback = victim, v.value, true
		}
	}
	b.tick++
	b.lines[line] = &l2Line{value: value, dirty: dirty, lru: b.tick}
	return evictedLine, evictedValue, writeback
}

// drop removes a line without writeback (it became stale).
func (b *l2Bank) drop(line uint64) {
	b.own()
	delete(b.lines, line)
}
