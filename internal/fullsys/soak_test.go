package fullsys

import (
	"testing"

	"repro/internal/sim"
)

// randomWorkload generates a random mix of ops over a small line pool
// (maximizing conflicts) and verifies two end-to-end properties as it
// runs: private-region stores always read back exactly, and a shared
// atomic counter totals correctly at the end.
type randomWorkload struct {
	cores    int
	opsLeft  []int
	rngs     []*sim.RNG
	private  []map[uint64]uint64 // expected token per private line
	lastLoad []uint64
	errs     []string
	incs     []uint64 // atomic increments issued per core
	loaded   []bool
}

const (
	sharedLines  = 8
	counterLine  = 1000
	privateBase  = 2000
	privateLines = 16
)

func newRandomWorkload(cores, opsPerCore int, seed uint64) *randomWorkload {
	w := &randomWorkload{
		cores:    cores,
		opsLeft:  make([]int, cores),
		rngs:     make([]*sim.RNG, cores),
		private:  make([]map[uint64]uint64, cores),
		lastLoad: make([]uint64, cores),
		incs:     make([]uint64, cores),
		loaded:   make([]bool, cores),
	}
	for c := 0; c < cores; c++ {
		w.opsLeft[c] = opsPerCore
		w.rngs[c] = sim.NewRNG(seed, uint64(c)+100)
		w.private[c] = make(map[uint64]uint64)
	}
	return w
}

func (w *randomWorkload) privateLine(core int, i uint64) uint64 {
	return privateBase + uint64(core)*privateLines + i%privateLines
}

func (w *randomWorkload) Next(core int) Op {
	// End-of-stream sequence: barrier, counter readback, halt.
	switch w.opsLeft[core] {
	case 0:
		w.opsLeft[core] = -1
		return Op{Kind: OpBarrier, Arg: 999}
	case -1:
		w.opsLeft[core] = -2
		return Op{Kind: OpLoad, Addr: addr(counterLine)}
	case -2:
		return Op{Kind: OpHalt}
	}
	w.opsLeft[core]--
	rng := w.rngs[core]
	switch rng.Intn(10) {
	case 0, 1:
		return Op{Kind: OpCompute, Arg: uint64(1 + rng.Intn(8))}
	case 2, 3:
		// Shared-pool load: value unpredictable, just exercise paths.
		return Op{Kind: OpLoad, Addr: addr(uint64(rng.Intn(sharedLines)))}
	case 4:
		// Shared-pool store.
		return Op{Kind: OpStore, Addr: addr(uint64(rng.Intn(sharedLines))), Arg: rng.Uint64()}
	case 5:
		w.incs[core]++
		return Op{Kind: OpAtomic, Addr: addr(counterLine), Arg: 1}
	case 6, 7:
		// Private store: remembered for verification.
		line := w.privateLine(core, uint64(rng.Intn(privateLines)))
		val := rng.Uint64()
		w.private[core][line] = val
		return Op{Kind: OpStore, Addr: addr(line), Arg: val}
	default:
		// Private load: verified in Observe if previously stored.
		line := w.privateLine(core, uint64(rng.Intn(privateLines)))
		w.loaded[core] = true
		return Op{Kind: OpLoad, Addr: addr(line)}
	}
}

func (w *randomWorkload) Observe(core int, a, value uint64) {
	line := LineOf(a)
	w.lastLoad[core] = value
	if line >= privateBase {
		owner := int(line-privateBase) / privateLines
		if owner != core {
			w.errs = append(w.errs, "core loaded another core's private line")
			return
		}
		if want, ok := w.private[core][line]; ok && value != want {
			w.errs = append(w.errs, "private line readback mismatch")
		}
	}
}

func TestRandomSoak(t *testing.T) {
	seeds := []uint64{1, 7, 1234}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, cores := range []int{2, 8} {
			wl := newRandomWorkload(cores, 300, seed)
			cfg := DefaultConfig(cores)
			cfg.L1Sets = 4
			cfg.L1Ways = 2 // small L1 to force evictions under conflict
			sys := runSystem(t, cfg, wl, 3_000_000)
			if len(wl.errs) > 0 {
				t.Fatalf("seed %d cores %d: %d data errors, first: %s",
					seed, cores, len(wl.errs), wl.errs[0])
			}
			var want uint64
			for _, n := range wl.incs {
				want += n
			}
			for c := 0; c < cores; c++ {
				if wl.lastLoad[c] != want {
					t.Fatalf("seed %d cores %d: core %d sees counter %d, want %d",
						seed, cores, c, wl.lastLoad[c], want)
				}
			}
			if err := sys.CheckCoherence(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
