package fullsys

import (
	"fmt"
	"sort"

	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Sender carries a message into the (possibly abstracted) network at
// the given cycle. The co-simulation layer supplies it.
type Sender func(m Msg, at sim.Cycle)

// System is the coarse-grain full-system simulator: a set of tiles
// plus the barrier coordinator and the message plumbing between tiles
// and the network. Tick must be called for every target cycle in
// order; Deliver hands network deliveries back.
type System struct {
	cfg  Config //simlint:derived construction input; restore validates geometry against it
	wl   Workload
	send Sender //simlint:derived wiring installed at construction, carries no state

	tiles   []*Tile
	events  sim.TypedQueue[sysEvent]
	now     sim.Cycle
	barrier map[uint64]int
	mcList  []int        //simlint:derived recomputed from cfg.MemControllers at construction
	mcIndex map[int]bool //simlint:derived recomputed from cfg.MemControllers at construction

	// memClaimed marks that a co-simulation coordinator owns
	// memory-oracle advancement (see ClaimMemory). Until then the
	// system self-advances its oracles every Tick, so a standalone
	// System works without a coordinator. It records which driver is
	// attached, not simulated state: a restored system is re-claimed by
	// whatever coordinator performs the restore.
	memClaimed bool //simlint:derived re-established by the restoring coordinator, not simulated state

	msgsSent   uint64
	flitsSent  uint64
	localMsgs  uint64
	msgsByType [numMsgTypes]uint64

	// Observability handles (observe.go). nil handles are no-ops, so
	// the counting sites below stay unconditional; nothing here feeds
	// simulated state.
	obsClampMem *obs.Counter //simlint:derived observer handle, re-resolved per run; never simulated state
	obsClampNet *obs.Counter //simlint:derived observer handle, re-resolved per run; never simulated state
}

// New constructs a system over the given workload. send receives every
// tile-to-tile message that must traverse the network (same-tile
// messages are short-circuited internally with Config.LocalLat).
func New(cfg Config, wl Workload, send Sender) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:     cfg,
		wl:      wl,
		send:    send,
		barrier: make(map[uint64]int),
		mcList:  cfg.controllers(),
		mcIndex: make(map[int]bool),
	}
	s.tiles = make([]*Tile, cfg.Tiles)
	for i := range s.tiles {
		s.tiles[i] = newTile(i, s)
	}
	for _, mc := range s.mcList {
		s.tiles[mc].mem = make(map[uint64]uint64)
		s.mcIndex[mc] = true
		oracle, err := newMemOracle(cfg)
		if err != nil {
			return nil, err
		}
		s.tiles[mc].memOracle = oracle
	}
	return s, nil
}

// newMemOracle builds one memory controller's oracle for the
// configured fidelity; nil selects the inline fixed path.
func newMemOracle(cfg Config) (dram.Oracle, error) {
	switch cfg.MemModel {
	case "", "fixed":
		return nil, nil
	case "ddr":
		return dram.NewDetailedOracle(cfg.DRAM)
	case "abstract":
		return dram.NewAbstractOracle(cfg.MemLat, cfg.MCOccupancy, cfg.MemTuneWindow)
	case "calibrated":
		return dram.NewCalibratedOracle(cfg.DRAM, cfg.MemLat, cfg.MCOccupancy,
			cfg.MemTuneWindow, sim.Cycle(cfg.MemRetune))
	default:
		return nil, fmt.Errorf("fullsys: unknown memory model %q", cfg.MemModel)
	}
}

// Cfg reports the system configuration.
func (s *System) Cfg() Config { return s.cfg }

// Tile exposes a tile for inspection (tests, invariant checkers).
func (s *System) Tile(i int) *Tile { return s.tiles[i] }

// mcOf maps a line to its memory controller tile.
func (s *System) mcOf(line uint64) int {
	return s.mcList[int(line%uint64(len(s.mcList)))]
}

// Tick advances the system by one cycle. The cycle argument must
// increase by exactly one per call.
func (s *System) Tick(now sim.Cycle) {
	if now < s.now {
		panic(fmt.Sprintf("fullsys: Tick(%v) after %v", now, s.now))
	}
	s.now = now
	for {
		d, ok := s.events.PopUntil(now)
		if !ok {
			break
		}
		s.fire(d.When, d.Item)
	}
	if !s.memClaimed {
		// Standalone operation: advance each memory oracle through
		// this cycle and turn its completions into events, exactly
		// where the per-cycle controller tick used to run. Under a
		// coordinator (ClaimMemory) the oracles advance a quantum at
		// a time instead.
		for _, mc := range s.mcList {
			o := s.tiles[mc].memOracle
			if o == nil {
				continue
			}
			o.AdvanceTo(now + 1)
			for _, c := range o.Drain() {
				s.CompleteMem(c.Meta, c.At)
			}
		}
	}
	for _, t := range s.tiles {
		t.tick(now)
	}
}

// MemPort is one memory controller exposed as a co-simulation
// component: the hosting tile and its oracle.
type MemPort struct {
	Tile   int
	Oracle dram.Oracle
}

// ClaimMemory transfers ownership of memory-oracle advancement to a
// co-simulation coordinator: after this call, Tick no longer advances
// the oracles, and the coordinator must AdvanceTo each quantum
// boundary and hand drained completions back through CompleteMem. The
// ports are returned in deterministic controller order. It returns nil
// under the inline fixed model; claiming twice panics.
func (s *System) ClaimMemory() []MemPort {
	if s.memClaimed {
		panic("fullsys: memory oracles already claimed by a coordinator")
	}
	s.memClaimed = true
	var ports []MemPort
	for _, mc := range s.mcList {
		if o := s.tiles[mc].memOracle; o != nil {
			ports = append(ports, MemPort{Tile: mc, Oracle: o})
		}
	}
	return ports
}

// CompleteMem applies one drained memory completion: the data access
// and the response message fire at the completion cycle when it is
// still in the future, and are clamped to the current cycle otherwise
// — the same bounded skew Deliver applies to network deliveries that
// complete inside an already simulated quantum.
func (s *System) CompleteMem(meta interface{}, at sim.Cycle) {
	m, ok := meta.(Msg)
	if !ok {
		panic(fmt.Sprintf("fullsys: memory completion carries %T, want Msg", meta))
	}
	if at <= s.now {
		if at < s.now {
			s.obsClampMem.Inc()
		}
		s.dramDone(s.now, m)
		return
	}
	s.events.Schedule(at, sysEvent{kind: evDramDone, msg: m})
}

// Deliver hands a network-delivered message to its destination tile.
// Call between Ticks, after the network has simulated the delivery
// cycle.
func (s *System) Deliver(m Msg, at sim.Cycle) {
	if at < s.now {
		s.obsClampNet.Inc()
		at = s.now
	}
	s.dispatch(at, m)
}

// dispatch routes a message to the right functional unit of its
// destination tile.
func (s *System) dispatch(now sim.Cycle, m Msg) {
	t := s.tiles[m.Dst]
	switch m.Type {
	case GetS, GetM, PutM, PutE, DataWB, InvAck, FwdAck, MemData, MemWAck:
		t.handleHome(now, m)
	case MemRead, MemWrite:
		t.handleMC(now, m)
	case BarArrive:
		s.barrierArrive(now, m)
	default:
		t.handleL1(now, m)
	}
}

// barrierArrive counts arrivals and releases everyone when the last
// core arrives.
func (s *System) barrierArrive(now sim.Cycle, m Msg) {
	id := m.Value
	s.barrier[id]++
	if s.barrier[id] < s.cfg.Tiles {
		return
	}
	delete(s.barrier, id)
	for t := 0; t < s.cfg.Tiles; t++ {
		s.sendAfter(now, 0, Msg{Type: BarRelease, Src: s.cfg.BarrierTile, Dst: t, Value: id})
	}
}

// sendAfter emits a message after a service delay. Same-tile messages
// short-circuit the network with the local-bank latency.
func (s *System) sendAfter(now sim.Cycle, delay int, m Msg) {
	if m.Src == m.Dst {
		s.localMsgs++
		at := now + sim.Cycle(delay+s.cfg.LocalLat)
		s.events.Schedule(at, sysEvent{kind: evDispatch, msg: m})
		return
	}
	s.msgsSent++
	s.flitsSent += uint64(m.Flits())
	s.msgsByType[m.Type]++
	if delay == 0 {
		s.send(m, now)
		return
	}
	at := now + sim.Cycle(delay)
	s.events.Schedule(at, sysEvent{kind: evSend, msg: m})
}

// Done reports whether every core has halted.
func (s *System) Done() bool {
	for _, t := range s.tiles {
		if !t.Halted() {
			return false
		}
	}
	return true
}

// FinishCycle reports the cycle at which the last core halted (valid
// once Done).
func (s *System) FinishCycle() sim.Cycle {
	var last sim.Cycle
	for _, t := range s.tiles {
		if t.stats.HaltedAt > last {
			last = t.stats.HaltedAt
		}
	}
	return last
}

// Retired reports total retired operations across cores.
func (s *System) Retired() uint64 {
	var n uint64
	for _, t := range s.tiles {
		n += t.stats.Retired
	}
	return n
}

// MsgsSent reports network messages emitted (excluding same-tile).
func (s *System) MsgsSent() uint64 { return s.msgsSent }

// FlitsSent reports network flits emitted.
func (s *System) FlitsSent() uint64 { return s.flitsSent }

// LocalMsgs reports messages short-circuited to the local bank.
func (s *System) LocalMsgs() uint64 { return s.localMsgs }

// MemOracles lists the memory oracles in deterministic controller
// order; empty under the inline fixed model. Available whether or not
// a coordinator has claimed them.
func (s *System) MemOracles() []dram.Oracle {
	var out []dram.Oracle
	for _, mc := range s.mcList {
		if o := s.tiles[mc].memOracle; o != nil {
			out = append(out, o)
		}
	}
	return out
}

// DRAMStats aggregates memory-controller statistics across oracles;
// the zero value is returned under the fixed model.
func (s *System) DRAMStats() dram.Stats {
	var agg dram.Stats
	n := 0
	var latSum, qSum float64
	for _, mc := range s.mcList {
		o := s.tiles[mc].memOracle
		if o == nil {
			continue
		}
		st := o.Stats()
		agg.Reads += st.Reads
		agg.Writes += st.Writes
		agg.RowHits += st.RowHits
		agg.RowMisses += st.RowMisses
		agg.RowConflicts += st.RowConflicts
		latSum += st.AvgLatency
		qSum += st.AvgQueueDepth
		n++
	}
	if n > 0 {
		agg.AvgLatency = latSum / float64(n)
		agg.AvgQueueDepth = qSum / float64(n)
	}
	return agg
}

// MsgsByType reports network messages sent per protocol message type.
func (s *System) MsgsByType() map[MsgType]uint64 {
	out := make(map[MsgType]uint64)
	for t, c := range s.msgsByType {
		if c > 0 {
			out[MsgType(t)] = c
		}
	}
	return out
}

// L1Stats aggregates L1 hits and misses across tiles.
func (s *System) L1Stats() (hits, misses uint64) {
	for _, t := range s.tiles {
		hits += t.l1.hits
		misses += t.l1.misses
	}
	return hits, misses
}

// CheckCoherence verifies the single-writer/multiple-reader invariant
// across all L1s and the directory's consistency with them. Tests call
// it between cycles; it reports the first violation found.
func (s *System) CheckCoherence() error {
	type holder struct {
		tile  int
		state uint8
	}
	lines := make(map[uint64][]holder)
	for _, t := range s.tiles {
		for _, set := range t.l1.sets {
			for i := range set {
				w := &set[i]
				if w.state != l1Invalid {
					lines[w.line] = append(lines[w.line], holder{t.id, w.state})
				}
			}
		}
	}
	// Check lines in sorted order so the reported first violation is
	// the same on every run.
	sorted := make([]uint64, 0, len(lines))
	//simlint:allow maprange keys collected here are sorted before use
	for line := range lines {
		sorted = append(sorted, line)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, line := range sorted {
		hs := lines[line]
		writers := 0
		for _, h := range hs {
			if h.state >= l1Exclusive {
				writers++
			}
		}
		if writers > 1 || (writers == 1 && len(hs) > 1) {
			return fmt.Errorf("fullsys: SWMR violated for line %#x: %d holders, %d exclusive",
				line, len(hs), writers)
		}
	}
	return nil
}

// StatsTable summarizes system-level execution statistics.
func (s *System) StatsTable(title string) *stats.Table {
	t := stats.NewTable(title,
		"metric", "value")
	var retired, loads, stores, atomics, loadStall, barStall, sbStall, compute uint64
	var prefIss, prefUse uint64
	for _, tile := range s.tiles {
		st := tile.stats
		retired += st.Retired
		loads += st.Loads
		stores += st.Stores
		atomics += st.Atomics
		loadStall += st.LoadStall
		barStall += st.BarStall
		sbStall += st.SBStall
		compute += st.Compute
		prefIss += st.PrefIssued
		prefUse += st.PrefUseful
	}
	hits, misses := s.L1Stats()
	t.AddRow("retired ops", retired)
	t.AddRow("loads / stores / atomics", fmt.Sprintf("%d / %d / %d", loads, stores, atomics))
	if hits+misses > 0 {
		t.AddRow("L1 miss rate %", float64(misses)/float64(hits+misses)*100)
	}
	t.AddRow("cycles: compute / load-stall / barrier / sb-stall",
		fmt.Sprintf("%d / %d / %d / %d", compute, loadStall, barStall, sbStall))
	t.AddRow("network messages (flits)", fmt.Sprintf("%d (%d)", s.msgsSent, s.flitsSent))
	var reqs, resps, fwds uint64
	for typ, c := range s.msgsByType { // fixed-size array: deterministic order
		switch MsgType(typ).VNet() {
		case 0:
			reqs += c
		case 1:
			resps += c
		default:
			fwds += c
		}
	}
	t.AddRow("messages req / resp / fwd", fmt.Sprintf("%d / %d / %d", reqs, resps, fwds))
	t.AddRow("local-bank messages", s.localMsgs)
	if prefIss > 0 {
		t.AddRow("prefetches issued (useful)", fmt.Sprintf("%d (%d)", prefIss, prefUse))
	}
	if d := s.DRAMStats(); d.Reads+d.Writes > 0 {
		t.AddRow("dram reads/writes, row-hit %",
			fmt.Sprintf("%d/%d, %.1f%%", d.Reads, d.Writes, d.RowHitRate()*100))
	}
	return t
}
