package fullsys

import (
	"fmt"

	"repro/internal/sim"
)

// Directory line states (the home's view).
const (
	dirU  uint8 = iota // uncached: no L1 holds the line
	dirS               // one or more shared copies
	dirEM              // one exclusive/modified owner
)

// Directory transaction kinds (one blocking transaction per line).
const (
	txnFetchE  uint8 = iota // GetS, line uncached, memory fetch -> DataE
	txnFetchS               // GetS, line shared, memory fetch -> DataS
	txnFetchM               // GetM, line uncached, memory fetch -> DataM
	txnDowngrd              // GetS, owner must downgrade
	txnInvM                 // GetM, sharers must invalidate
	txnFwdM                 // GetM, ownership transfers owner -> req
)

// dirLine is the directory state for one line homed at this tile.
type dirLine struct {
	line    uint64
	state   uint8
	owner   int32
	sharers []int32

	busy  bool
	waitq []Msg
	txn   dirTxn
}

type dirTxn struct {
	kind         uint8
	req          int32
	acks         int
	needData     bool
	haveData     bool
	value        uint64
	reqWasSharer bool
}

func (d *dirLine) addSharer(t int) {
	for _, s := range d.sharers {
		if s == int32(t) {
			return
		}
	}
	d.sharers = append(d.sharers, int32(t))
}

func (d *dirLine) hasSharer(t int) bool {
	for _, s := range d.sharers {
		if s == int32(t) {
			return true
		}
	}
	return false
}

// ownDir materializes a private deep copy of the directory map when
// it is shared with a fork. All directory access flows through
// dirLineOf, which returns mutable entries, so it must own the map
// first.
func (t *Tile) ownDir() {
	if !t.dirShared {
		return
	}
	dir := make(map[uint64]*dirLine, len(t.dir))
	slab := make([]dirLine, 0, len(t.dir))
	//simlint:allow maprange map-to-map rebuild; insertion order immaterial
	for line, d := range t.dir {
		slab = append(slab, *d)
		c := &slab[len(slab)-1]
		c.sharers = append([]int32(nil), d.sharers...)
		c.waitq = append([]Msg(nil), d.waitq...)
		dir[line] = c
	}
	t.dir = dir
	t.dirShared = false
}

// dirLineOf returns (creating if needed) the directory entry for line.
func (t *Tile) dirLineOf(line uint64) *dirLine {
	t.ownDir()
	d := t.dir[line]
	if d == nil {
		d = &dirLine{line: line, state: dirU, owner: -1}
		t.dir[line] = d
	}
	return d
}

// handleHome processes a message addressed to this tile's directory /
// L2 bank.
func (t *Tile) handleHome(now sim.Cycle, m Msg) {
	d := t.dirLineOf(m.Line)
	switch m.Type {
	case GetS, GetM, PutM, PutE:
		if d.busy {
			d.waitq = append(d.waitq, m)
			return
		}
		t.homeRequest(now, d, m)
	case DataWB, InvAck, FwdAck, MemData, MemWAck:
		t.homeResponse(now, d, m)
	default:
		panic(fmt.Sprintf("fullsys: home %d got unexpected %v", t.id, m))
	}
}

// homeRequest handles a request when the line is not busy. All
// outgoing messages incur the directory service latency.
func (t *Tile) homeRequest(now sim.Cycle, d *dirLine, m Msg) {
	req := m.Src
	switch m.Type {
	case GetS:
		switch d.state {
		case dirU:
			if v, ok := t.readBank(m.Line); ok {
				d.state = dirEM
				d.owner = int32(req)
				t.reply(now, DataE, m.Line, req, v)
				return
			}
			t.beginTxn(d, dirTxn{kind: txnFetchE, req: int32(req)})
			t.memRead(now, m.Line)
		case dirS:
			if v, ok := t.readBank(m.Line); ok {
				d.addSharer(req)
				t.reply(now, DataS, m.Line, req, v)
				return
			}
			t.beginTxn(d, dirTxn{kind: txnFetchS, req: int32(req)})
			t.memRead(now, m.Line)
		case dirEM:
			if int(d.owner) == req {
				panic(fmt.Sprintf("fullsys: home %d GetS from current owner %d line %#x", t.id, req, m.Line))
			}
			t.beginTxn(d, dirTxn{kind: txnDowngrd, req: int32(req)})
			t.reply(now, FwdGetS, m.Line, int(d.owner), 0)
		}

	case GetM:
		switch d.state {
		case dirU:
			if v, ok := t.readBank(m.Line); ok {
				d.state = dirEM
				d.owner = int32(req)
				t.reply(now, DataM, m.Line, req, v)
				return
			}
			t.beginTxn(d, dirTxn{kind: txnFetchM, req: int32(req)})
			t.memRead(now, m.Line)
		case dirS:
			// Grant without data only when the home still lists the
			// requester as a sharer AND the requester claims to hold
			// the line (m.Value == 1, set when it pinned its S copy).
			// Silent S evictions make the home's sharer list alone
			// unsound: a stale sharer asking for M has no data.
			was := d.hasSharer(req) && m.Value == 1
			txn := dirTxn{kind: txnInvM, req: int32(req), reqWasSharer: was, needData: !was}
			for _, s := range d.sharers {
				if int(s) == req {
					continue
				}
				txn.acks++
			}
			if txn.needData {
				if v, ok := t.readBank(m.Line); ok {
					txn.haveData = true
					txn.value = v
				}
			}
			if txn.acks == 0 && (!txn.needData || txn.haveData) {
				// No invalidations outstanding and data on hand.
				t.finishInvM(now, d, txn)
				return
			}
			t.beginTxn(d, txn)
			for _, s := range d.sharers {
				if int(s) != req {
					t.reply(now, Inv, m.Line, int(s), 0)
				}
			}
			if txn.needData && !txn.haveData {
				t.memRead(now, m.Line)
			}
		case dirEM:
			if int(d.owner) == req {
				panic(fmt.Sprintf("fullsys: home %d GetM from current owner %d line %#x", t.id, req, m.Line))
			}
			t.beginTxn(d, dirTxn{kind: txnFwdM, req: int32(req)})
			t.reply(now, FwdGetM, m.Line, int(d.owner), uint64(req))
		}

	case PutM:
		if d.state == dirEM && int(d.owner) == req {
			t.writeBank(now, m.Line, m.Value, true)
			d.state = dirU
			d.owner = -1
		}
		// A stale PutM (the line has since moved on) is acknowledged
		// and its data dropped: a newer version exists elsewhere.
		t.reply(now, WBAck, m.Line, req, 0)

	case PutE:
		if d.state == dirEM && int(d.owner) == req {
			d.state = dirU
			d.owner = -1
		}
		t.reply(now, WBAck, m.Line, req, 0)
	}
}

// homeResponse advances the line's blocking transaction.
func (t *Tile) homeResponse(now sim.Cycle, d *dirLine, m Msg) {
	switch m.Type {
	case MemWAck:
		vb := t.victimBuf[m.Line]
		if vb == nil {
			panic(fmt.Sprintf("fullsys: home %d MemWAck with empty victim buffer line %#x", t.id, m.Line))
		}
		vb.outstanding--
		if vb.outstanding == 0 {
			delete(t.victimBuf, m.Line)
		}
		return

	case MemData:
		if !d.busy {
			panic(fmt.Sprintf("fullsys: home %d MemData for idle line %#x", t.id, m.Line))
		}
		t.writeBank(now, m.Line, m.Value, false)
		switch d.txn.kind {
		case txnFetchE:
			d.state = dirEM
			d.owner = d.txn.req
			t.reply(now, DataE, m.Line, int(d.txn.req), m.Value)
			t.endTxn(now, d, m.Line)
		case txnFetchS:
			d.addSharer(int(d.txn.req))
			t.reply(now, DataS, m.Line, int(d.txn.req), m.Value)
			t.endTxn(now, d, m.Line)
		case txnFetchM:
			d.state = dirEM
			d.owner = d.txn.req
			t.reply(now, DataM, m.Line, int(d.txn.req), m.Value)
			t.endTxn(now, d, m.Line)
		case txnInvM:
			d.txn.haveData = true
			d.txn.value = m.Value
			t.maybeFinishInvM(now, d, m.Line)
		default:
			panic(fmt.Sprintf("fullsys: home %d MemData during txn %d", t.id, d.txn.kind))
		}
		return

	case DataWB:
		if !d.busy || d.txn.kind != txnDowngrd {
			panic(fmt.Sprintf("fullsys: home %d unexpected %v", t.id, m))
		}
		t.writeBank(now, m.Line, m.Value, true)
		owner := d.owner
		d.state = dirS
		d.owner = -1
		d.sharers = d.sharers[:0]
		d.addSharer(int(owner))
		d.addSharer(int(d.txn.req))
		t.reply(now, DataS, m.Line, int(d.txn.req), m.Value)
		t.endTxn(now, d, m.Line)
		return

	case InvAck:
		if !d.busy || d.txn.kind != txnInvM {
			panic(fmt.Sprintf("fullsys: home %d unexpected %v", t.id, m))
		}
		d.txn.acks--
		if d.txn.acks < 0 {
			panic(fmt.Sprintf("fullsys: home %d extra InvAck line %#x", t.id, m.Line))
		}
		t.maybeFinishInvM(now, d, m.Line)
		return

	case FwdAck:
		if !d.busy || d.txn.kind != txnFwdM {
			panic(fmt.Sprintf("fullsys: home %d unexpected %v", t.id, m))
		}
		d.owner = d.txn.req
		t.endTxn(now, d, m.Line)
		return
	}
	panic(fmt.Sprintf("fullsys: home %d unhandled response %v", t.id, m))
}

func (t *Tile) maybeFinishInvM(now sim.Cycle, d *dirLine, line uint64) {
	if d.txn.acks > 0 || (d.txn.needData && !d.txn.haveData) {
		return
	}
	txn := d.txn
	t.finishInvM(now, d, txn)
	t.endTxn(now, d, line)
}

// finishInvM grants M to the requester once all sharers are gone.
func (t *Tile) finishInvM(now sim.Cycle, d *dirLine, txn dirTxn) {
	d.state = dirEM
	d.owner = txn.req
	d.sharers = d.sharers[:0]
	if txn.reqWasSharer {
		t.reply(now, GrantM, d.line, int(txn.req), 0)
	} else {
		t.reply(now, DataM, d.line, int(txn.req), txn.value)
	}
}

func (t *Tile) beginTxn(d *dirLine, txn dirTxn) {
	d.busy = true
	d.txn = txn
}

// endTxn unblocks the line and replays queued requests until one of
// them blocks it again.
func (t *Tile) endTxn(now sim.Cycle, d *dirLine, line uint64) {
	d.busy = false
	for !d.busy && len(d.waitq) > 0 {
		m := d.waitq[0]
		d.waitq = d.waitq[:copy(d.waitq, d.waitq[1:])]
		t.homeRequest(now, d, m)
	}
}

// reply sends a directory-side message after the bank service latency.
func (t *Tile) reply(now sim.Cycle, typ MsgType, line uint64, dst int, value uint64) {
	t.sys.sendAfter(now, t.sys.cfg.DirLat, Msg{Type: typ, Line: line, Src: t.id, Dst: dst, Value: value})
}

// readBank returns the line's data from the L2 bank or the victim
// buffer.
func (t *Tile) readBank(line uint64) (uint64, bool) {
	if l := t.l2.get(line); l != nil {
		t.l2.hits++
		return l.value, true
	}
	if vb, ok := t.victimBuf[line]; ok {
		return vb.value, true
	}
	t.l2.misses++
	return 0, false
}

// writeBank installs data into the L2 bank, spilling a dirty victim to
// memory through the victim buffer.
func (t *Tile) writeBank(now sim.Cycle, line uint64, value uint64, dirty bool) {
	evLine, evVal, wb := t.l2.put(line, value, dirty)
	if !wb {
		return
	}
	vb := t.victimBuf[evLine]
	if vb == nil {
		vb = &vbEntry{}
		t.victimBuf[evLine] = vb
	}
	vb.value = evVal
	vb.outstanding++
	t.sys.sendAfter(now, t.sys.cfg.DirLat, Msg{Type: MemWrite, Line: evLine, Src: t.id,
		Dst: t.sys.mcOf(evLine), Value: evVal})
}

// memRead requests a line fill from the line's memory controller.
func (t *Tile) memRead(now sim.Cycle, line uint64) {
	t.sys.sendAfter(now, t.sys.cfg.DirLat, Msg{Type: MemRead, Line: line, Src: t.id, Dst: t.sys.mcOf(line)})
}

// handleMC processes memory-controller traffic at a controller tile,
// via the fixed-latency model or the detailed DRAM bank model.
func (t *Tile) handleMC(now sim.Cycle, m Msg) {
	if t.mem == nil {
		panic(fmt.Sprintf("fullsys: tile %d is not a memory controller (%v)", t.id, m))
	}
	if m.Type != MemRead && m.Type != MemWrite {
		panic(fmt.Sprintf("fullsys: MC %d got unexpected %v", t.id, m))
	}
	if t.memOracle != nil {
		t.handleMCOracle(now, m)
		return
	}
	if t.mcNextFree < now {
		t.mcNextFree = now
	}
	queue := t.mcNextFree - now
	t.mcNextFree += sim.Cycle(t.sys.cfg.MCOccupancy)
	switch m.Type {
	case MemRead:
		v := t.mem[m.Line]
		t.sys.sendAfter(now, int(queue)+t.sys.cfg.MemLat,
			Msg{Type: MemData, Line: m.Line, Src: t.id, Dst: m.Src, Value: v})
	case MemWrite:
		t.mem[m.Line] = m.Value
		t.sys.sendAfter(now, int(queue)+t.sys.cfg.MemLat,
			Msg{Type: MemWAck, Line: m.Line, Src: t.id, Dst: m.Src})
	}
}

// handleMCOracle routes the access through the tile's memory oracle
// (detailed, abstract, or calibrated). The home's victim buffer
// guarantees no read/write overlap per line, so applying the write and
// reading the value at completion time is safe even though FR-FCFS
// reorders across lines. Completions come back through
// System.CompleteMem — either from the standalone self-advance in Tick
// or from a co-simulation coordinator at quantum boundaries — and
// always flow through the event queue, which keeps each (source, vnet)
// injection stream monotonic as the network requires.
func (t *Tile) handleMCOracle(now sim.Cycle, m Msg) {
	if !t.memOracle.Enqueue(m.Line, m.Type == MemWrite, m, now) {
		// Bounded queue full: retry next cycle.
		t.sys.events.Schedule(now+1, sysEvent{kind: evMCRetry, msg: m})
	}
}
