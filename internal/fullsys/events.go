package fullsys

import (
	"fmt"

	"repro/internal/sim"
)

// evKind discriminates the deferred actions the system schedules. Every
// deferred action reduces to a (kind, message) pair of plain data, so
// the pending event queue can be enumerated into a checkpoint and
// rebuilt — which a queue of closures cannot.
type evKind uint8

const (
	// evDispatch delivers a message to its destination's functional
	// unit at the due cycle (local-bank short circuit).
	evDispatch evKind = iota
	// evSend hands a message to the network at the due cycle (service
	// delay elapsed).
	evSend
	// evDramDone applies a completed bank-level DRAM access and emits
	// the memory response.
	evDramDone
	// evMCRetry re-presents a memory access to a full DRAM queue.
	evMCRetry
	numEvKinds
)

// sysEvent is one pending deferred action.
type sysEvent struct {
	kind evKind
	msg  Msg
}

// fire executes a popped event at its due cycle.
func (s *System) fire(at sim.Cycle, ev sysEvent) {
	switch ev.kind {
	case evDispatch:
		s.dispatch(at, ev.msg)
	case evSend:
		s.send(ev.msg, at)
	case evDramDone:
		s.dramDone(at, ev.msg)
	case evMCRetry:
		s.tiles[ev.msg.Dst].handleMCOracle(at, ev.msg)
	default:
		panic(fmt.Sprintf("fullsys: unknown event kind %d", ev.kind))
	}
}

// dramDone completes a bank-level memory access: the home's victim
// buffer guarantees no read/write overlap per line, so applying the
// write and reading the value at completion time is safe even though
// FR-FCFS reorders across lines.
func (s *System) dramDone(at sim.Cycle, m Msg) {
	t := s.tiles[m.Dst]
	if m.Type == MemWrite {
		t.mem[m.Line] = m.Value
		s.sendAfter(at, 0, Msg{Type: MemWAck, Line: m.Line, Src: t.id, Dst: m.Src})
		return
	}
	s.sendAfter(at, 0, Msg{Type: MemData, Line: m.Line, Src: t.id, Dst: m.Src, Value: t.mem[m.Line]})
}
