package fullsys

import (
	"fmt"
	"sort"

	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// This file enumerates every piece of mutable full-system state into
// the checkpoint format. The inverse restore validates structural
// invariants (state enums in range, endpoints inside the machine, map
// keys consistent) so a corrupted stream fails loudly instead of
// resuming a subtly wrong machine. All maps are written in sorted key
// order, keeping the encoded bytes — and therefore golden snapshot
// files — deterministic.

// MsgCodec is a snapshot.PayloadCodec serializing Msg packet payloads
// for the network-side snapshot. Tiles bounds endpoint validation.
type MsgCodec struct {
	Tiles int
}

// EncodePayload implements snapshot.PayloadCodec.
func (c MsgCodec) EncodePayload(e *snapshot.Encoder, v interface{}) {
	if v == nil {
		e.Bool(false)
		return
	}
	m, ok := v.(Msg)
	if !ok {
		panic(fmt.Sprintf("fullsys: packet payload is %T, not Msg", v))
	}
	e.Bool(true)
	encodeMsg(e, m)
}

// DecodePayload implements snapshot.PayloadCodec.
func (c MsgCodec) DecodePayload(d *snapshot.Decoder) (interface{}, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	m := Msg{Type: MsgType(d.U8()), Line: d.U64(), Src: d.Int(), Dst: d.Int(), Value: d.U64()}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if m.Type >= numMsgTypes {
		d.Failf("payload message type %d out of range", m.Type)
	} else if m.Src < 0 || m.Src >= c.Tiles || m.Dst < 0 || m.Dst >= c.Tiles {
		d.Failf("payload message endpoints %d->%d outside %d tiles", m.Src, m.Dst, c.Tiles)
	}
	return m, d.Err()
}

func encodeMsg(e *snapshot.Encoder, m Msg) {
	e.U8(uint8(m.Type))
	e.U64(m.Line)
	e.Int(m.Src)
	e.Int(m.Dst)
	e.U64(m.Value)
}

func (s *System) decodeMsg(d *snapshot.Decoder) (Msg, error) {
	m := Msg{Type: MsgType(d.U8()), Line: d.U64(), Src: d.Int(), Dst: d.Int(), Value: d.U64()}
	if d.Err() != nil {
		return m, d.Err()
	}
	if m.Type >= numMsgTypes {
		d.Failf("message type %d out of range", m.Type)
	} else if m.Src < 0 || m.Src >= s.cfg.Tiles || m.Dst < 0 || m.Dst >= s.cfg.Tiles {
		d.Failf("message endpoints %d->%d outside %d tiles", m.Src, m.Dst, s.cfg.Tiles)
	}
	return m, d.Err()
}

func encodeSysEvent(e *snapshot.Encoder, ev sysEvent) {
	e.U8(uint8(ev.kind))
	encodeMsg(e, ev.msg)
}

func (s *System) decodeSysEvent(d *snapshot.Decoder) (sysEvent, error) {
	k := evKind(d.U8())
	m, err := s.decodeMsg(d)
	if err != nil {
		return sysEvent{}, err
	}
	if k >= numEvKinds {
		d.Failf("event kind %d out of range", k)
	}
	return sysEvent{kind: k, msg: m}, d.Err()
}

// sortedKeys returns a map's keys in ascending order. The map is
// ranged once to collect; iteration order cannot reach the output.
func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	//simlint:allow maprange keys collected here are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// SnapshotTo writes the complete system state: clock, counters, barrier
// occupancy, pending events, workload position, and every tile.
func (s *System) SnapshotTo(e *snapshot.Encoder) {
	e.Section("fullsys")
	e.U64(uint64(s.now))
	e.U64(s.msgsSent)
	e.U64(s.flitsSent)
	e.U64(s.localMsgs)
	for _, c := range s.msgsByType {
		e.U64(c)
	}
	ids := make([]uint64, 0, len(s.barrier))
	//simlint:allow maprange keys collected here are sorted before use
	for id := range s.barrier {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.U64(id)
		e.Int(s.barrier[id])
	}
	s.events.SnapshotTo(e, encodeSysEvent)
	st, ok := s.wl.(snapshot.Stater)
	e.Bool(ok)
	if ok {
		st.SnapshotTo(e)
	}
	for _, t := range s.tiles {
		t.snapshotTo(e)
	}
}

// RestoreFrom reloads a state written by SnapshotTo into a freshly
// constructed system with the same configuration and workload shape.
func (s *System) RestoreFrom(d *snapshot.Decoder) error {
	d.Section("fullsys")
	s.now = sim.Cycle(d.U64())
	s.msgsSent = d.U64()
	s.flitsSent = d.U64()
	s.localMsgs = d.U64()
	for i := range s.msgsByType {
		s.msgsByType[i] = d.U64()
	}
	s.barrier = make(map[uint64]int)
	nb := d.Count(16)
	for i := 0; i < nb; i++ {
		id := d.U64()
		cnt := d.Int()
		if d.Err() == nil && (cnt < 1 || cnt >= s.cfg.Tiles) {
			d.Failf("barrier %d has %d arrivals, want 1..%d", id, cnt, s.cfg.Tiles-1)
		}
		s.barrier[id] = cnt
	}
	if err := s.events.RestoreFrom(d, s.decodeSysEvent); err != nil {
		return err
	}
	hasWl := d.Bool()
	st, ok := s.wl.(snapshot.Stater)
	if d.Err() == nil && hasWl != ok {
		d.Failf("workload snapshot presence mismatch: snapshot %v, workload %T", hasWl, s.wl)
	}
	if d.Err() == nil && hasWl {
		if err := st.RestoreFrom(d); err != nil {
			return err
		}
	}
	for _, t := range s.tiles {
		if err := t.restoreFrom(d); err != nil {
			return err
		}
	}
	return d.Err()
}

func (t *Tile) snapshotTo(e *snapshot.Encoder) {
	// Core side.
	e.U8(t.coreState)
	e.U64(t.compute)
	e.U8(uint8(t.curOp.Kind))
	e.U64(t.curOp.Addr)
	e.U64(t.curOp.Arg)
	e.Bool(t.opValid)
	e.U32(uint32(len(t.storeBuf)))
	for _, se := range t.storeBuf {
		e.U64(se.addr)
		e.U64(se.value)
	}
	e.Bool(t.storeTxn)
	t.l1.snapshotTo(e)
	mshrKeys := sortedKeys(t.mshrs)
	e.U32(uint32(len(mshrKeys)))
	for _, line := range mshrKeys {
		m := t.mshrs[line]
		e.U64(line)
		e.U8(m.kind)
		e.U64(m.addr)
		e.U64(m.arg)
		e.Bool(m.inv)
	}
	wbKeys := sortedKeys(t.wbBuf)
	e.U32(uint32(len(wbKeys)))
	for _, line := range wbKeys {
		wb := t.wbBuf[line]
		e.U64(line)
		e.U64(wb.value)
		e.Bool(wb.dirty)
	}
	fwdKeys := sortedKeys(t.pendingFwd)
	e.U32(uint32(len(fwdKeys)))
	for _, line := range fwdKeys {
		e.U64(line)
		msgs := t.pendingFwd[line]
		e.U32(uint32(len(msgs)))
		for _, m := range msgs {
			encodeMsg(e, m)
		}
	}
	e.Int(t.prefetchOut)
	st := &t.stats
	e.U64(st.Retired)
	e.U64(st.Loads)
	e.U64(st.Stores)
	e.U64(st.Atomics)
	e.U64(st.Barriers)
	e.U64(st.LoadStall)
	e.U64(st.BarStall)
	e.U64(st.SBStall)
	e.U64(st.Compute)
	e.U64(uint64(st.HaltedAt))
	e.U64(st.PrefIssued)
	e.U64(st.PrefUseful)

	// Home side.
	dirKeys := sortedKeys(t.dir)
	e.U32(uint32(len(dirKeys)))
	for _, line := range dirKeys {
		dl := t.dir[line]
		e.U64(line)
		e.U8(dl.state)
		e.I64(int64(dl.owner))
		e.U32(uint32(len(dl.sharers)))
		for _, sh := range dl.sharers {
			e.I64(int64(sh))
		}
		e.Bool(dl.busy)
		e.U32(uint32(len(dl.waitq)))
		for _, m := range dl.waitq {
			encodeMsg(e, m)
		}
		e.U8(dl.txn.kind)
		e.I64(int64(dl.txn.req))
		e.Int(dl.txn.acks)
		e.Bool(dl.txn.needData)
		e.Bool(dl.txn.haveData)
		e.U64(dl.txn.value)
		e.Bool(dl.txn.reqWasSharer)
	}
	t.l2.snapshotTo(e)
	vbKeys := sortedKeys(t.victimBuf)
	e.U32(uint32(len(vbKeys)))
	for _, line := range vbKeys {
		vb := t.victimBuf[line]
		e.U64(line)
		e.U64(vb.value)
		e.Int(vb.outstanding)
	}

	// Memory-controller side.
	e.Bool(t.mem != nil)
	if t.mem != nil {
		memKeys := sortedKeys(t.mem)
		e.U32(uint32(len(memKeys)))
		for _, line := range memKeys {
			e.U64(line)
			e.U64(t.mem[line])
		}
	}
	e.U64(uint64(t.mcNextFree))
	e.Bool(t.memOracle != nil)
	if t.memOracle != nil {
		t.memOracle.(dram.OracleStater).SnapshotTo(e, func(e *snapshot.Encoder, meta interface{}) {
			encodeMsg(e, meta.(Msg))
		})
	}
}

func (t *Tile) restoreFrom(d *snapshot.Decoder) error {
	d.Enter(fmt.Sprintf("tile[%d]", t.id))
	defer d.Leave()
	s := t.sys

	// Core side.
	t.coreState = d.U8()
	if d.Err() == nil && t.coreState > coreHalted {
		d.Failf("core state %d out of range", t.coreState)
	}
	t.compute = d.U64()
	t.curOp = Op{Kind: OpKind(d.U8()), Addr: d.U64(), Arg: d.U64()}
	t.opValid = d.Bool()
	nsb := d.Count(16)
	if d.Err() == nil && nsb > s.cfg.StoreBuf {
		d.Failf("store buffer has %d entries, capacity %d", nsb, s.cfg.StoreBuf)
	}
	t.storeBuf = t.storeBuf[:0]
	for i := 0; i < nsb; i++ {
		t.storeBuf = append(t.storeBuf, storeEntry{addr: d.U64(), value: d.U64()})
	}
	t.storeTxn = d.Bool()
	if err := t.l1.restoreFrom(d); err != nil {
		return err
	}
	t.mshrs = make(map[uint64]*mshrEntry)
	nm := d.Count(26)
	for i := 0; i < nm; i++ {
		line := d.U64()
		m := &mshrEntry{kind: d.U8(), addr: d.U64(), arg: d.U64(), inv: d.Bool()}
		if d.Err() == nil && m.kind > mshrPrefetch {
			d.Failf("MSHR kind %d out of range", m.kind)
		}
		t.mshrs[line] = m
	}
	t.wbBuf = make(map[uint64]wbEntry)
	nwb := d.Count(17)
	for i := 0; i < nwb; i++ {
		line := d.U64()
		t.wbBuf[line] = wbEntry{value: d.U64(), dirty: d.Bool()}
	}
	t.pendingFwd = make(map[uint64][]Msg)
	nfwd := d.Count(12)
	for i := 0; i < nfwd; i++ {
		line := d.U64()
		nmsg := d.Count(33)
		msgs := make([]Msg, 0, nmsg)
		for j := 0; j < nmsg; j++ {
			m, err := s.decodeMsg(d)
			if err != nil {
				return err
			}
			msgs = append(msgs, m)
		}
		t.pendingFwd[line] = msgs
	}
	t.prefetchOut = d.Int()
	st := &t.stats
	st.Retired = d.U64()
	st.Loads = d.U64()
	st.Stores = d.U64()
	st.Atomics = d.U64()
	st.Barriers = d.U64()
	st.LoadStall = d.U64()
	st.BarStall = d.U64()
	st.SBStall = d.U64()
	st.Compute = d.U64()
	st.HaltedAt = sim.Cycle(d.U64())
	st.PrefIssued = d.U64()
	st.PrefUseful = d.U64()

	// Home side.
	t.dir = make(map[uint64]*dirLine)
	t.dirShared = false
	nd := d.Count(40)
	for i := 0; i < nd; i++ {
		line := d.U64()
		dl := &dirLine{line: line}
		dl.state = d.U8()
		if d.Err() == nil && dl.state > dirEM {
			d.Failf("directory state %d out of range", dl.state)
		}
		dl.owner = int32(d.I64())
		nsh := d.Count(8)
		for j := 0; j < nsh; j++ {
			dl.sharers = append(dl.sharers, int32(d.I64()))
		}
		dl.busy = d.Bool()
		nwq := d.Count(33)
		for j := 0; j < nwq; j++ {
			m, err := s.decodeMsg(d)
			if err != nil {
				return err
			}
			dl.waitq = append(dl.waitq, m)
		}
		dl.txn.kind = d.U8()
		if d.Err() == nil && dl.txn.kind > txnFwdM {
			d.Failf("directory transaction kind %d out of range", dl.txn.kind)
		}
		dl.txn.req = int32(d.I64())
		dl.txn.acks = d.Int()
		dl.txn.needData = d.Bool()
		dl.txn.haveData = d.Bool()
		dl.txn.value = d.U64()
		dl.txn.reqWasSharer = d.Bool()
		t.dir[line] = dl
	}
	if err := t.l2.restoreFrom(d); err != nil {
		return err
	}
	t.victimBuf = make(map[uint64]*vbEntry)
	nvb := d.Count(24)
	for i := 0; i < nvb; i++ {
		line := d.U64()
		t.victimBuf[line] = &vbEntry{value: d.U64(), outstanding: d.Int()}
	}

	// Memory-controller side.
	hasMem := d.Bool()
	if d.Err() == nil && hasMem != (t.mem != nil) {
		d.Failf("memory-controller presence mismatch: snapshot %v, target %v", hasMem, t.mem != nil)
	}
	if d.Err() == nil && hasMem {
		t.mem = make(map[uint64]uint64)
		nmem := d.Count(16)
		for i := 0; i < nmem; i++ {
			line := d.U64()
			t.mem[line] = d.U64()
		}
	}
	t.mcNextFree = sim.Cycle(d.U64())
	hasOracle := d.Bool()
	if d.Err() == nil && hasOracle != (t.memOracle != nil) {
		d.Failf("memory oracle presence mismatch: snapshot %v, target %v", hasOracle, t.memOracle != nil)
	}
	if d.Err() == nil && hasOracle {
		err := t.memOracle.(dram.OracleStater).RestoreFrom(d, func(d *snapshot.Decoder) (interface{}, error) {
			m, err := s.decodeMsg(d)
			if err != nil {
				return nil, err
			}
			if m.Type != MemRead && m.Type != MemWrite {
				d.Failf("memory oracle metadata has non-memory message %v", m)
				return nil, d.Err()
			}
			return m, d.Err()
		})
		if err != nil {
			return err
		}
	}
	return d.Err()
}

// SnapshotTo writes a scripted workload's per-core position and
// observation log (the op lists themselves are construction inputs).
func (s *Script) SnapshotTo(e *snapshot.Encoder) {
	e.Section("script")
	e.U32(uint32(len(s.pos)))
	for c := range s.pos {
		e.Int(s.pos[c])
		e.U32(uint32(len(s.observed[c])))
		for _, v := range s.observed[c] {
			e.U64(v)
		}
	}
}

// RestoreFrom reloads a position written by SnapshotTo into a script
// built over the same op lists.
func (s *Script) RestoreFrom(d *snapshot.Decoder) error {
	d.Section("script")
	if n := int(d.U32()); d.Err() == nil && n != len(s.pos) {
		d.Failf("script snapshot has %d cores, script has %d", n, len(s.pos))
		return d.Err()
	}
	for c := range s.pos {
		s.pos[c] = d.Int()
		if d.Err() == nil && (s.pos[c] < 0 || s.pos[c] > len(s.Ops[c])) {
			d.Failf("core %d script position %d outside 0..%d", c, s.pos[c], len(s.Ops[c]))
			return d.Err()
		}
		n := d.Count(8)
		s.observed[c] = s.observed[c][:0]
		for i := 0; i < n; i++ {
			s.observed[c] = append(s.observed[c], d.U64())
		}
	}
	return d.Err()
}

func (c *l1Cache) snapshotTo(e *snapshot.Encoder) {
	e.U32(uint32(len(c.sets)))
	ways := 0
	if len(c.sets) > 0 {
		ways = len(c.sets[0])
	}
	e.U32(uint32(ways))
	for _, set := range c.sets {
		for i := range set {
			w := &set[i]
			e.U64(w.line)
			e.U8(w.state)
			e.Bool(w.pinned)
			e.Bool(w.prefetched)
			e.U64(w.value)
			e.U64(w.lru)
		}
	}
	e.U64(c.tick)
	e.U64(c.hits)
	e.U64(c.misses)
}

func (c *l1Cache) restoreFrom(d *snapshot.Decoder) error {
	sets := int(d.U32())
	ways := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	wantWays := 0
	if len(c.sets) > 0 {
		wantWays = len(c.sets[0])
	}
	if sets != len(c.sets) || ways != wantWays {
		d.Failf("L1 geometry mismatch: snapshot %dx%d, target %dx%d", sets, ways, len(c.sets), wantWays)
		return d.Err()
	}
	c.ownAll()
	for _, set := range c.sets {
		for i := range set {
			w := &set[i]
			w.line = d.U64()
			w.state = d.U8()
			if d.Err() == nil && w.state > l1Modified {
				d.Failf("L1 state %d out of range", w.state)
			}
			w.pinned = d.Bool()
			w.prefetched = d.Bool()
			w.value = d.U64()
			w.lru = d.U64()
		}
	}
	c.tick = d.U64()
	c.hits = d.U64()
	c.misses = d.U64()
	return d.Err()
}

func (b *l2Bank) snapshotTo(e *snapshot.Encoder) {
	e.Int(b.capacity)
	e.U64(b.tick)
	e.U64(b.hits)
	e.U64(b.misses)
	keys := sortedKeys(b.lines)
	e.U32(uint32(len(keys)))
	for _, line := range keys {
		l := b.lines[line]
		e.U64(line)
		e.U64(l.value)
		e.Bool(l.dirty)
		e.U64(l.lru)
	}
}

func (b *l2Bank) restoreFrom(d *snapshot.Decoder) error {
	capacity := d.Int()
	if d.Err() == nil && capacity != b.capacity {
		d.Failf("L2 capacity mismatch: snapshot %d, target %d", capacity, b.capacity)
		return d.Err()
	}
	b.tick = d.U64()
	b.hits = d.U64()
	b.misses = d.U64()
	b.lines = make(map[uint64]*l2Line)
	b.shared = false
	n := d.Count(25)
	if d.Err() == nil && n > b.capacity {
		d.Failf("L2 bank holds %d lines, capacity %d", n, b.capacity)
		return d.Err()
	}
	for i := 0; i < n; i++ {
		line := d.U64()
		b.lines[line] = &l2Line{value: d.U64(), dirty: d.Bool(), lru: d.U64()}
	}
	return d.Err()
}
