package fullsys

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/sim"
)

// Core execution states.
const (
	coreRunning uint8 = iota
	coreLoadWait
	coreAtomicWait
	coreBarrierWait
	coreHalted
)

// mshrKind distinguishes outstanding miss transactions.
const (
	mshrLoad uint8 = iota
	mshrStore
	mshrAtomic
	mshrPrefetch
)

// mshrEntry tracks one outstanding L1 miss.
type mshrEntry struct {
	kind uint8
	addr uint64
	arg  uint64 // store token / atomic addend
	// inv marks a load fill that must be used once and discarded: an
	// Inv arrived while the fill was in flight (the IS_D -> IS_D_I
	// transition), so installing the data could violate coherence.
	inv bool
}

// wbEntry is an evicted line awaiting WBAck. The data stays available
// so the tile can answer forwarded requests that race with the
// writeback.
type wbEntry struct {
	value uint64
	dirty bool
}

type storeEntry struct {
	addr  uint64
	value uint64
}

// tileStats accumulates per-tile performance counters.
type tileStats struct {
	Retired   uint64
	Loads     uint64
	Stores    uint64
	Atomics   uint64
	Barriers  uint64
	LoadStall uint64 // cycles stalled on loads/atomics
	BarStall  uint64 // cycles stalled at barriers
	SBStall   uint64 // cycles stalled on a full store buffer
	Compute   uint64
	HaltedAt  sim.Cycle

	PrefIssued uint64 // prefetches sent
	PrefUseful uint64 // demand hits on prefetched lines
}

// Tile is one node of the target machine: core + L1 on the request
// side, L2 bank + directory slice on the home side, and optionally a
// memory controller.
type Tile struct {
	id  int
	sys *System

	// Core side.
	coreState uint8
	compute   uint64 // remaining compute cycles
	curOp     Op
	opValid   bool
	storeBuf  []storeEntry
	storeTxn  bool
	l1        *l1Cache
	mshrs     map[uint64]*mshrEntry
	wbBuf     map[uint64]wbEntry
	// pendingFwd stalls forwarded requests that raced ahead of the
	// data grant making this tile the owner (virtual-network 2
	// messages can overtake virtual-network 1 in the real NoC); they
	// replay after the fill installs.
	pendingFwd  map[uint64][]Msg
	prefetchOut int
	stats       tileStats

	// Home (directory + L2 bank) side. dir supports copy-on-write
	// sharing with a fork, materialized by dirLineOf.
	dir       map[uint64]*dirLine
	dirShared bool //simlint:derived copy-on-write bookkeeping, re-seeded by every fork, never serialized
	l2        *l2Bank
	victimBuf map[uint64]*vbEntry

	// Memory controller side (nil when the tile hosts no MC).
	mem        map[uint64]uint64
	mcNextFree sim.Cycle
	// memOracle is the reciprocally coupled memory component; non-nil
	// for every MemModel except the inline "fixed" path.
	memOracle dram.Oracle
}

// vbEntry is a dirty L2 victim awaiting MemWAck; outstanding counts
// re-evictions of the same line.
type vbEntry struct {
	value       uint64
	outstanding int
}

func newTile(id int, sys *System) *Tile {
	t := &Tile{
		id:         id,
		sys:        sys,
		l1:         newL1(sys.cfg.L1Sets, sys.cfg.L1Ways),
		mshrs:      make(map[uint64]*mshrEntry),
		wbBuf:      make(map[uint64]wbEntry),
		pendingFwd: make(map[uint64][]Msg),
		dir:        make(map[uint64]*dirLine),
		l2:         newL2(sys.cfg.L2Lines),
		victimBuf:  make(map[uint64]*vbEntry),
	}
	return t
}

// Halted reports whether the core has retired its halt op.
func (t *Tile) Halted() bool { return t.coreState == coreHalted }

// Stats reports the tile's counters.
func (t *Tile) Stats() tileStats { return t.stats }

// tick advances the core by one cycle.
func (t *Tile) tick(now sim.Cycle) {
	if t.coreState == coreHalted {
		return
	}
	t.drainStoreBuffer(now)

	switch t.coreState {
	case coreLoadWait, coreAtomicWait:
		t.stats.LoadStall++
		return
	case coreBarrierWait:
		t.stats.BarStall++
		return
	}
	if t.compute > 0 {
		t.compute--
		t.stats.Compute++
		return
	}
	if !t.opValid {
		t.curOp = t.sys.wl.Next(t.id)
		t.opValid = true
	}
	t.execute(now)
}

// drainStoreBuffer tries to retire the head store (at most one per
// cycle, at most one store transaction in flight).
func (t *Tile) drainStoreBuffer(now sim.Cycle) {
	if t.storeTxn || len(t.storeBuf) == 0 {
		return
	}
	head := t.storeBuf[0]
	line := LineOf(head.addr)
	if _, busy := t.mshrs[line]; busy {
		return
	}
	if _, wb := t.wbBuf[line]; wb {
		return
	}
	var haveLine uint64
	if w := t.l1.lookup(line); w != nil {
		switch w.state {
		case l1Modified, l1Exclusive:
			w.state = l1Modified
			w.value = head.value
			t.popStore()
			return
		case l1Shared:
			// Pin the S copy so the upgrade can be granted without
			// data; the claim travels in the GetM.
			w.pinned = true
			haveLine = 1
		}
	}
	t.mshrs[line] = &mshrEntry{kind: mshrStore, addr: head.addr, arg: head.value}
	t.storeTxn = true
	t.sys.sendAfter(now, 0, Msg{Type: GetM, Line: line, Src: t.id, Dst: t.sys.cfg.HomeOf(line), Value: haveLine})
}

func (t *Tile) popStore() {
	copy(t.storeBuf, t.storeBuf[1:])
	t.storeBuf = t.storeBuf[:len(t.storeBuf)-1]
}

// fenced reports whether all prior stores are globally performed.
func (t *Tile) fenced() bool { return len(t.storeBuf) == 0 && !t.storeTxn }

// execute attempts the current op; ops that cannot proceed this cycle
// simply leave opValid set and retry next cycle.
func (t *Tile) execute(now sim.Cycle) {
	op := t.curOp
	switch op.Kind {
	case OpCompute:
		if op.Arg > 0 {
			t.compute = op.Arg - 1
			t.stats.Compute++
		}
		t.retire()

	case OpLoad:
		line := LineOf(op.Addr)
		// Store-to-load forwarding at line-token granularity: the
		// youngest buffered store to the line wins.
		for i := len(t.storeBuf) - 1; i >= 0; i-- {
			if LineOf(t.storeBuf[i].addr) == line {
				t.observeLoad(op.Addr, t.storeBuf[i].value)
				t.retire()
				return
			}
		}
		if _, busy := t.mshrs[line]; busy {
			t.stats.LoadStall++
			return
		}
		if _, wb := t.wbBuf[line]; wb {
			t.stats.LoadStall++
			return
		}
		if w := t.l1.lookup(line); w != nil {
			if w.prefetched {
				w.prefetched = false
				t.stats.PrefUseful++
			}
			t.observeLoad(op.Addr, w.value)
			t.compute = uint64(t.sys.cfg.L1HitLat - 1)
			t.retire()
			return
		}
		t.l1.misses++
		t.mshrs[line] = &mshrEntry{kind: mshrLoad, addr: op.Addr}
		t.coreState = coreLoadWait
		t.opValid = false
		t.sys.sendAfter(now, 0, Msg{Type: GetS, Line: line, Src: t.id, Dst: t.sys.cfg.HomeOf(line)})
		t.issuePrefetches(now, line)

	case OpStore:
		if len(t.storeBuf) >= t.sys.cfg.StoreBuf {
			t.stats.SBStall++
			return
		}
		t.storeBuf = append(t.storeBuf, storeEntry{addr: op.Addr, value: op.Arg})
		t.stats.Stores++
		t.retire()

	case OpAtomic:
		if !t.fenced() {
			t.stats.LoadStall++
			return
		}
		line := LineOf(op.Addr)
		if _, busy := t.mshrs[line]; busy {
			t.stats.LoadStall++
			return
		}
		if _, wb := t.wbBuf[line]; wb {
			t.stats.LoadStall++
			return
		}
		if w := t.l1.lookup(line); w != nil && w.state >= l1Exclusive {
			w.state = l1Modified
			w.value += op.Arg
			t.sys.wl.Observe(t.id, op.Addr, w.value)
			t.compute = uint64(t.sys.cfg.L1HitLat - 1)
			t.stats.Atomics++
			t.retire()
			return
		}
		var haveLine uint64
		if w := t.l1.probe(line); w != nil {
			w.pinned = true
			haveLine = 1
		}
		t.l1.misses++
		t.mshrs[line] = &mshrEntry{kind: mshrAtomic, addr: op.Addr, arg: op.Arg}
		t.coreState = coreAtomicWait
		t.opValid = false
		t.sys.sendAfter(now, 0, Msg{Type: GetM, Line: line, Src: t.id, Dst: t.sys.cfg.HomeOf(line), Value: haveLine})

	case OpBarrier:
		if !t.fenced() {
			t.stats.LoadStall++
			return
		}
		t.coreState = coreBarrierWait
		t.opValid = false
		t.stats.Barriers++
		t.sys.sendAfter(now, 0, Msg{Type: BarArrive, Src: t.id, Dst: t.sys.cfg.BarrierTile, Value: op.Arg})

	case OpHalt:
		if !t.fenced() {
			t.stats.LoadStall++
			return
		}
		t.coreState = coreHalted
		t.stats.HaltedAt = now
		t.opValid = false

	default:
		panic(fmt.Sprintf("fullsys: unknown op kind %v", op.Kind))
	}
}

// issuePrefetches sends next-line read requests after a demand miss,
// bounded by the outstanding-prefetch budget and skipping lines that
// are present, in flight, or being written back.
func (t *Tile) issuePrefetches(now sim.Cycle, line uint64) {
	for d := 1; d <= t.sys.cfg.PrefetchDegree; d++ {
		if t.prefetchOut >= t.sys.cfg.PrefetchMax {
			return
		}
		next := line + uint64(d)
		if t.mshrs[next] != nil {
			continue
		}
		if _, wb := t.wbBuf[next]; wb {
			continue
		}
		if t.l1.probe(next) != nil {
			continue
		}
		t.mshrs[next] = &mshrEntry{kind: mshrPrefetch, addr: next << LineShift}
		t.prefetchOut++
		t.stats.PrefIssued++
		t.sys.sendAfter(now, 0, Msg{Type: GetS, Line: next, Src: t.id, Dst: t.sys.cfg.HomeOf(next)})
	}
}

func (t *Tile) observeLoad(addr, value uint64) {
	t.l1.hits++
	t.stats.Loads++
	t.sys.wl.Observe(t.id, addr, value)
}

func (t *Tile) retire() {
	t.stats.Retired++
	t.opValid = false
}

// install places a filled line into the L1, evicting (and writing
// back) a victim if necessary. It panics if every way is pinned, which
// cannot happen with >= 2 ways and the two-transaction MSHR bound.
func (t *Tile) install(now sim.Cycle, line uint64, state uint8, value uint64) *l1Line {
	w := t.l1.victim(line)
	if w == nil {
		panic(fmt.Sprintf("fullsys: tile %d cannot install line %#x, all ways pinned", t.id, line))
	}
	if w.state != l1Invalid {
		t.evict(now, w)
	}
	t.l1.install(w, line, state, value)
	return w
}

// evict removes a valid line from the L1, issuing the writeback
// protocol for E/M lines. S lines drop silently.
func (t *Tile) evict(now sim.Cycle, w *l1Line) {
	switch w.state {
	case l1Modified:
		t.wbBuf[w.line] = wbEntry{value: w.value, dirty: true}
		t.sys.sendAfter(now, 0, Msg{Type: PutM, Line: w.line, Src: t.id,
			Dst: t.sys.cfg.HomeOf(w.line), Value: w.value})
	case l1Exclusive:
		t.wbBuf[w.line] = wbEntry{value: w.value, dirty: false}
		t.sys.sendAfter(now, 0, Msg{Type: PutE, Line: w.line, Src: t.id,
			Dst: t.sys.cfg.HomeOf(w.line)})
	}
	w.state = l1Invalid
}

// handleL1 processes messages addressed to the tile's request side.
func (t *Tile) handleL1(now sim.Cycle, m Msg) {
	switch m.Type {
	case DataS, DataE, DataM, GrantM:
		t.completeMiss(now, m)

	case FwdGetS:
		if t.stallFwd(m) {
			return
		}
		if w := t.l1.probe(m.Line); w != nil && w.state >= l1Exclusive {
			w.state = l1Shared
			t.sys.sendAfter(now, 0, Msg{Type: DataWB, Line: m.Line, Src: t.id, Dst: m.Src, Value: w.value})
			return
		}
		if wb, ok := t.wbBuf[m.Line]; ok {
			t.sys.sendAfter(now, 0, Msg{Type: DataWB, Line: m.Line, Src: t.id, Dst: m.Src, Value: wb.value})
			return
		}
		panic(fmt.Sprintf("fullsys: tile %d got %v without owning the line", t.id, m))

	case FwdGetM:
		if t.stallFwd(m) {
			return
		}
		req := int(m.Value)
		if w := t.l1.probe(m.Line); w != nil && w.state >= l1Exclusive {
			value := w.value
			w.state = l1Invalid
			t.sys.sendAfter(now, 0, Msg{Type: DataM, Line: m.Line, Src: t.id, Dst: req, Value: value})
			t.sys.sendAfter(now, 0, Msg{Type: FwdAck, Line: m.Line, Src: t.id, Dst: m.Src, Value: uint64(req)})
			return
		}
		if wb, ok := t.wbBuf[m.Line]; ok {
			t.sys.sendAfter(now, 0, Msg{Type: DataM, Line: m.Line, Src: t.id, Dst: req, Value: wb.value})
			t.sys.sendAfter(now, 0, Msg{Type: FwdAck, Line: m.Line, Src: t.id, Dst: m.Src, Value: uint64(req)})
			return
		}
		panic(fmt.Sprintf("fullsys: tile %d got %v without owning the line", t.id, m))

	case Inv:
		if w := t.l1.probe(m.Line); w != nil {
			if w.state >= l1Exclusive {
				panic(fmt.Sprintf("fullsys: tile %d got Inv while holding line %#x in %s",
					t.id, m.Line, l1StateName(w.state)))
			}
			w.state = l1Invalid
			w.pinned = false
		} else if e := t.mshrs[m.Line]; e != nil && (e.kind == mshrLoad || e.kind == mshrPrefetch) {
			// The Inv may belong to a write serialized after our GetS
			// but whose invalidation overtook our DataS; the incoming
			// fill must be used once (demand load) or dropped entirely
			// (prefetch) and never installed.
			e.inv = true
		}
		t.sys.sendAfter(now, 0, Msg{Type: InvAck, Line: m.Line, Src: t.id, Dst: m.Src})

	case WBAck:
		delete(t.wbBuf, m.Line)

	case BarRelease:
		if t.coreState == coreBarrierWait {
			t.coreState = coreRunning
			t.stats.Retired++
		}

	default:
		panic(fmt.Sprintf("fullsys: tile %d request side got unexpected %v", t.id, m))
	}
}

// completeMiss finishes the MSHR transaction the response belongs to.
func (t *Tile) completeMiss(now sim.Cycle, m Msg) {
	e := t.mshrs[m.Line]
	if e == nil {
		panic(fmt.Sprintf("fullsys: tile %d got %v with no MSHR", t.id, m))
	}
	delete(t.mshrs, m.Line)
	switch e.kind {
	case mshrPrefetch:
		t.prefetchOut--
		if e.inv {
			// An invalidation raced the prefetch fill: drop it.
			return
		}
		state := l1Shared
		if m.Type == DataE {
			state = l1Exclusive
		}
		w := t.install(now, m.Line, state, m.Value)
		w.prefetched = true
		t.replayFwds(now, m.Line)

	case mshrLoad:
		if e.inv {
			if m.Type != DataS {
				panic(fmt.Sprintf("fullsys: tile %d invalidated-in-flight fill with %v", t.id, m))
			}
			if len(t.pendingFwd[m.Line]) > 0 {
				panic(fmt.Sprintf("fullsys: tile %d has stalled forwards for discarded fill %#x", t.id, m.Line))
			}
			// Use the fill once (the load reads the pre-invalidation
			// value, which our GetS serialized before the writer) and
			// discard it.
			t.stats.Loads++
			t.stats.Retired++
			t.sys.wl.Observe(t.id, e.addr, m.Value)
			t.coreState = coreRunning
			return
		}
		state := l1Shared
		if m.Type == DataE {
			state = l1Exclusive
		}
		t.install(now, m.Line, state, m.Value)
		t.stats.Loads++
		t.stats.Retired++
		t.sys.wl.Observe(t.id, e.addr, m.Value)
		t.coreState = coreRunning
		t.replayFwds(now, m.Line)

	case mshrStore:
		if m.Type == GrantM {
			w := t.l1.probe(m.Line)
			if w == nil {
				panic(fmt.Sprintf("fullsys: tile %d GrantM for absent line %#x", t.id, m.Line))
			}
			w.state = l1Modified
			w.pinned = false
			w.value = e.arg
		} else {
			t.install(now, m.Line, l1Modified, e.arg)
		}
		t.storeTxn = false
		t.popStore()
		t.replayFwds(now, m.Line)

	case mshrAtomic:
		var w *l1Line
		if m.Type == GrantM {
			w = t.l1.probe(m.Line)
			if w == nil {
				panic(fmt.Sprintf("fullsys: tile %d GrantM for absent line %#x", t.id, m.Line))
			}
			w.state = l1Modified
			w.pinned = false
		} else {
			w = t.install(now, m.Line, l1Modified, m.Value)
		}
		w.value += e.arg
		t.sys.wl.Observe(t.id, e.addr, w.value)
		t.stats.Atomics++
		t.stats.Retired++
		t.coreState = coreRunning
		t.replayFwds(now, m.Line)
	}
}

// stallFwd queues a forwarded request that arrived before the data
// grant that makes this tile the owner; it replays after the fill.
func (t *Tile) stallFwd(m Msg) bool {
	if t.mshrs[m.Line] == nil {
		return false
	}
	t.pendingFwd[m.Line] = append(t.pendingFwd[m.Line], m)
	return true
}

// replayFwds re-dispatches forwards stalled on the just-filled line.
func (t *Tile) replayFwds(now sim.Cycle, line uint64) {
	fwds := t.pendingFwd[line]
	if len(fwds) == 0 {
		return
	}
	delete(t.pendingFwd, line)
	for _, m := range fwds {
		t.handleL1(now, m)
	}
}
