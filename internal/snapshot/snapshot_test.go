package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
)

// sealed builds a small but representative checkpoint: every primitive
// type, a section marker, and nested context.
func sealed(digest uint64) []byte {
	e := NewEncoder(digest)
	e.Section("header")
	e.U8(7)
	e.U16(0xBEEF)
	e.U32(0xDEADBEEF)
	e.U64(0x0123456789ABCDEF)
	e.I64(-42)
	e.Int(-7)
	e.F64(3.14159)
	e.Bool(true)
	e.Bool(false)
	e.String("hello")
	e.Bytes([]byte{1, 2, 3})
	e.Section("body")
	e.U32(2)
	e.U64(10)
	e.U64(20)
	return e.Finish()
}

func TestRoundTrip(t *testing.T) {
	const digest = 0xCAFE
	d, err := NewDecoder(sealed(digest), digest)
	if err != nil {
		t.Fatal(err)
	}
	d.Section("header")
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := d.U16(); v != 0xBEEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := d.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := d.U64(); v != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", v)
	}
	if v := d.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.Int(); v != -7 {
		t.Errorf("Int = %d", v)
	}
	if v := d.F64(); v != 3.14159 {
		t.Errorf("F64 = %v", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool pair mismatch")
	}
	if v := d.String(); v != "hello" {
		t.Errorf("String = %q", v)
	}
	if b := d.Bytes(); len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Errorf("Bytes = %v", b)
	}
	d.Section("body")
	if n := d.Count(8); n != 2 {
		t.Fatalf("Count = %d", n)
	}
	if a, b := d.U64(), d.U64(); a != 10 || b != 20 {
		t.Errorf("list = %d, %d", a, b)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodingDeterministic(t *testing.T) {
	a, b := sealed(1), sealed(1)
	if string(a) != string(b) {
		t.Error("identical encodes produced different bytes")
	}
}

// TestCorruption is the table-driven robustness check: every corruption
// class must be rejected with its sentinel error and a descriptive
// message, never a panic or a silent misread.
func TestCorruption(t *testing.T) {
	const digest = 0xCAFE
	good := sealed(digest)

	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	reseal := func(b []byte) []byte {
		b = b[:len(b)-trailerLen]
		return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"below envelope", good[:headerLen+trailerLen-1], ErrTruncated},
		{"bad magic", mut(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"wrong version", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[len(Magic):], FormatVersion+1)
			return reseal(b)
		}), ErrVersion},
		{"flipped payload byte", mut(func(b []byte) []byte { b[headerLen+9] ^= 0x40; return b }), ErrCorrupt},
		{"flipped trailer byte", mut(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }), ErrCorrupt},
		{"truncated mid-payload", reseal(append([]byte(nil), good[:len(good)-20]...)), ErrTruncated},
		{"trailing garbage", reseal(append(append([]byte(nil), good[:len(good)-trailerLen]...), 0xFF, 0xFF)), ErrCorrupt},
		{"wrong digest", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[len(Magic)+4:], digest+1)
			return reseal(b)
		}), ErrConfigMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := decodeAll(tc.data, digest)
			if err == nil {
				t.Fatal("corrupted input decoded without error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want category %v", err, tc.want)
			}
			if len(err.Error()) < len("snapshot: ") {
				t.Fatalf("error message not descriptive: %q", err)
			}
		})
	}
}

// decodeAll performs the full decode sequence of sealed() and returns
// the first failure (envelope or field level).
func decodeAll(data []byte, digest uint64) error {
	d, err := NewDecoder(data, digest)
	if err != nil {
		return err
	}
	d.Section("header")
	d.U8()
	d.U16()
	d.U32()
	d.U64()
	d.I64()
	d.Int()
	d.F64()
	d.Bool()
	d.Bool()
	_ = d.String()
	d.Bytes()
	d.Section("body")
	n := d.Count(8)
	for i := 0; i < n; i++ {
		d.U64()
	}
	return d.Finish()
}

func TestStickyErrorAndContext(t *testing.T) {
	e := NewEncoder(1)
	e.Section("a")
	e.U8(3)
	d, err := NewDecoder(e.Finish(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Enter("router[3]")
	d.Section("a")
	d.U8()
	d.U64() // past the end: must set the sticky error
	if d.Err() == nil {
		t.Fatal("read past end did not error")
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("error %v, want ErrTruncated", d.Err())
	}
	if !strings.Contains(d.Err().Error(), "router[3]") {
		t.Errorf("error lacks context label: %v", d.Err())
	}
	// Later reads stay zero-valued and keep the first error.
	first := d.Err()
	if v := d.U64(); v != 0 {
		t.Errorf("read after error returned %d", v)
	}
	if d.Err() != first {
		t.Error("sticky error was replaced")
	}
}

func TestSectionMismatch(t *testing.T) {
	e := NewEncoder(1)
	e.Section("written")
	d, err := NewDecoder(e.Finish(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Section("expected")
	if d.Err() == nil || !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("section mismatch not reported: %v", d.Err())
	}
	if !strings.Contains(d.Err().Error(), "written") || !strings.Contains(d.Err().Error(), "expected") {
		t.Errorf("section mismatch message lacks both names: %v", d.Err())
	}
}

func TestCountRejectsHugeValues(t *testing.T) {
	e := NewEncoder(1)
	e.U32(1 << 30) // claims a billion elements with no bytes behind them
	d, err := NewDecoder(e.Finish(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Count(8); n != 0 {
		t.Fatalf("Count accepted %d", n)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("error %v, want ErrCorrupt", d.Err())
	}
}

func TestDigestStable(t *testing.T) {
	if Digest("a", "b") != Digest("a", "b") {
		t.Error("digest not stable")
	}
	if Digest("a", "b") == Digest("ab") {
		t.Error("digest ignores part boundaries")
	}
	if Digest("a", "b") == Digest("b", "a") {
		t.Error("digest ignores order")
	}
}

// FuzzDecoder drives arbitrary bytes through the full decode path used
// by sealed(): the decoder must never panic and must flag any input
// that differs from a well-formed stream.
func FuzzDecoder(f *testing.F) {
	const digest = 0xCAFE
	good := sealed(digest)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(good[:headerLen+trailerLen])
	f.Fuzz(func(t *testing.T, data []byte) {
		err := decodeAll(data, digest)
		if err == nil && string(data) != string(good) {
			t.Fatalf("malformed input (%d bytes) decoded cleanly", len(data))
		}
	})
}
