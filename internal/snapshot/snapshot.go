// Package snapshot implements the versioned, deterministic binary
// checkpoint format for the co-simulator.
//
// A checkpoint is a flat little-endian byte stream with a fixed
// envelope:
//
//	offset  size  field
//	0       8     magic "RECOSNAP"
//	8       4     format version (u32)
//	12      8     config digest (u64, FNV-64a over the run description)
//	20      ...   payload (explicit per-package field writes)
//	end-4   4     CRC32 (IEEE) over everything before it
//
// The payload is produced by explicit SnapshotTo/RestoreFrom methods in
// each simulator package — state is enumerated in code, never via
// reflection — so the byte stream for a given simulation state is
// itself deterministic and can be compared or checked in as a golden
// file. The envelope makes the failure modes loud: wrong file type,
// wrong format version, bit corruption, and restoring into a different
// configuration are each distinct errors, detected before any field is
// decoded.
//
// Decoding uses a sticky error: after the first failure every getter
// returns a zero value and the error (with byte offset and the section
// context in effect) is reported by Err/Finish. Section markers are
// written into the stream itself, so a decode that drifts out of sync
// with the encode fails at the next section boundary with both names in
// the message instead of silently misreading fields.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"strings"
)

// Magic identifies a checkpoint stream.
const Magic = "RECOSNAP"

// FormatVersion is the checkpoint format produced by this build.
// Decoding any other version fails with ErrVersion.
//
// History: 1 — initial format; 2 — component-registry layout (memory
// oracles snapshotted per tile, calibration pairs via calib.Reciprocal
// sections); 3 — deflection routers carry an ejection counter; 4 — the
// GPU backend no longer serializes its kernel-launch counters (they
// became gating-dependent host-cost telemetry, not simulated state).
const FormatVersion uint32 = 4

const (
	headerLen  = len(Magic) + 4 + 8 // magic + version + config digest
	trailerLen = 4                  // CRC32 (IEEE)
	sectionTag = 0xA5               // marks a Section name in the stream
)

// Sentinel error categories, matchable with errors.Is. Every decode
// failure wraps exactly one of these with a descriptive message.
var (
	// ErrTruncated reports input shorter than its contents claim.
	ErrTruncated = errors.New("snapshot: truncated input")
	// ErrBadMagic reports input that is not a checkpoint at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion reports a checkpoint from an incompatible format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrCorrupt reports a checksum mismatch or an internally
	// inconsistent stream (bad section marker, impossible count,
	// trailing garbage, out-of-range value).
	ErrCorrupt = errors.New("snapshot: corrupt input")
	// ErrConfigMismatch reports a checkpoint taken under a different
	// configuration digest than the one it is being restored into.
	ErrConfigMismatch = errors.New("snapshot: config mismatch")
)

// Digest hashes an ordered list of strings describing the run
// configuration (FNV-64a, NUL-separated). The same parts always digest
// to the same value, so a checkpoint can only be restored into a run
// built from an identical description.
func Digest(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// PayloadCodec serializes the opaque Payload field of network packets.
// The network layers are payload-agnostic; the co-simulation layer
// supplies a codec for its message type.
type PayloadCodec interface {
	// EncodePayload writes one payload (which may be nil).
	EncodePayload(e *Encoder, payload interface{})
	// DecodePayload reads one payload written by EncodePayload.
	DecodePayload(d *Decoder) (interface{}, error)
}

// Stater is implemented by components that can enumerate their mutable
// state into a snapshot and restore it.
type Stater interface {
	SnapshotTo(e *Encoder)
	RestoreFrom(d *Decoder) error
}

// Encoder appends fixed-width little-endian fields to a checkpoint
// under construction. Encoding cannot fail; Finish seals the stream.
type Encoder struct {
	buf []byte
}

// NewEncoder starts a checkpoint with the standard envelope header and
// the given config digest.
func NewEncoder(digest uint64) *Encoder {
	e := &Encoder{buf: make([]byte, 0, 1<<12)}
	e.buf = append(e.buf, Magic...)
	e.U32(FormatVersion)
	e.U64(digest)
	return e
}

// Len reports the bytes written so far (header included).
func (e *Encoder) Len() int { return len(e.buf) }

// U8 writes one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 writes a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 writes a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 writes a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 writes a little-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int writes an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 writes a float64 by its exact IEEE-754 bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool writes a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes writes a u32 length prefix followed by the raw bytes.
func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) { e.Bytes([]byte(s)) }

// Section writes a named marker into the stream. The decoder verifies
// the same name at the same position, so encode/decode drift is caught
// at the next boundary instead of corrupting every later field.
func (e *Encoder) Section(name string) {
	e.U8(sectionTag)
	e.String(name)
}

// Finish appends the CRC32 trailer and returns the complete checkpoint.
// The encoder must not be used afterwards.
func (e *Encoder) Finish() []byte {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.ChecksumIEEE(e.buf))
	return e.buf
}

// Decoder reads a checkpoint sealed by Encoder.Finish. The envelope
// (magic, version, CRC, digest) is validated by NewDecoder before any
// field is read; field getters then use a sticky error, so a sequence
// of reads can be issued unconditionally and checked once via Err or
// Finish.
type Decoder struct {
	data []byte // payload region (envelope stripped)
	off  int
	err  error
	ctx  []string
}

// NewDecoder validates the envelope of a checkpoint and positions a
// decoder at the start of the payload. wantDigest is the config digest
// of the run being restored into; a mismatch fails with
// ErrConfigMismatch before any payload is touched.
func NewDecoder(data []byte, wantDigest uint64) (*Decoder, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes, smaller than the %d-byte envelope",
			ErrTruncated, len(data), headerLen+trailerLen)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: got %q, want %q — not a checkpoint",
			ErrBadMagic, data[:len(Magic)], Magic)
	}
	ver := binary.LittleEndian.Uint32(data[len(Magic):])
	if ver != FormatVersion {
		return nil, fmt.Errorf("%w: checkpoint has format version %d, this build reads version %d",
			ErrVersion, ver, FormatVersion)
	}
	body := data[:len(data)-trailerLen]
	want := binary.LittleEndian.Uint32(data[len(data)-trailerLen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: CRC32 %#08x does not match trailer %#08x",
			ErrCorrupt, got, want)
	}
	digest := binary.LittleEndian.Uint64(data[len(Magic)+4:])
	if digest != wantDigest {
		return nil, fmt.Errorf("%w: checkpoint was taken under config digest %#016x, restoring into %#016x",
			ErrConfigMismatch, digest, wantDigest)
	}
	return &Decoder{data: body[headerLen:]}, nil
}

// Err reports the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the unread payload bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

// Enter pushes a context label included in later error messages.
func (d *Decoder) Enter(label string) { d.ctx = append(d.ctx, label) }

// Leave pops the most recent context label.
func (d *Decoder) Leave() {
	if len(d.ctx) > 0 {
		d.ctx = d.ctx[:len(d.ctx)-1]
	}
}

func (d *Decoder) where() string {
	if len(d.ctx) == 0 {
		return ""
	}
	return " in " + strings.Join(d.ctx, "/")
}

// Failf records a decode failure wrapping ErrCorrupt, unless an error
// is already pending. Restore methods use it for semantic validation
// (out-of-range indices, impossible states).
func (d *Decoder) Failf(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (offset %d%s)",
			ErrCorrupt, fmt.Sprintf(format, args...), d.off, d.where())
	}
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) || d.off+n < 0 {
		d.err = fmt.Errorf("%w: need %d bytes for %s at payload offset %d of %d%s",
			ErrTruncated, n, what, d.off, len(d.data), d.where())
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2, "u16")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 by its exact bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool; any byte other than 0 or 1 is corruption.
func (d *Decoder) Bool() bool {
	v := d.U8()
	if v > 1 {
		d.Failf("bool byte is %#x, want 0 or 1", v)
		return false
	}
	return v == 1
}

// Bytes reads a length-prefixed byte slice. The length is validated
// against the remaining payload before allocation.
func (d *Decoder) Bytes() []byte {
	n := int(d.U32())
	b := d.take(n, "bytes body")
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// Count reads a u32 element count and validates it against the
// remaining payload assuming each element occupies at least perItemMin
// bytes, so corrupt counts fail here instead of causing huge
// allocations or long garbage-decoding loops.
func (d *Decoder) Count(perItemMin int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if perItemMin < 1 {
		perItemMin = 1
	}
	if n > d.Remaining()/perItemMin {
		d.Failf("count %d needs at least %d bytes but only %d remain", n, n*perItemMin, d.Remaining())
		return 0
	}
	return n
}

// Section consumes a marker written by Encoder.Section and verifies its
// name, anchoring decode errors to the named region.
func (d *Decoder) Section(name string) {
	if tag := d.U8(); d.err == nil && tag != sectionTag {
		d.Failf("expected section marker for %q, found byte %#x — stream out of sync", name, tag)
		return
	}
	if got := d.String(); d.err == nil && got != name {
		d.Failf("expected section %q, found section %q — stream out of sync", name, got)
	}
}

// Finish reports the sticky error if any, and otherwise verifies the
// payload was consumed exactly (trailing bytes are corruption).
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d trailing payload bytes after the last field",
			ErrCorrupt, len(d.data)-d.off)
	}
	return nil
}
