package repro

import (
	"fmt"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// ConfigDigest fingerprints everything a checkpoint depends on: the
// target-machine configuration, the co-simulation mode, and a caller
// description of the workload. Restoring a snapshot into a
// co-simulation built from a different configuration fails with
// snapshot.ErrConfigMismatch instead of resuming a subtly wrong run.
//
// The checkpoint mechanism itself (encoding, atomic file I/O, chunked
// resumable running) lives in internal/ckpt and is shared with the
// cosimd session server; this function owns the digest *policy* for
// the public Config type.
func ConfigDigest(cfg Config, mode Mode, workloadDesc string) uint64 {
	// Activity gating changes simulator effort, never simulated state
	// (asserted by the gating bit-identity tests), so a checkpoint
	// taken with gating on must restore into a -no-fastforward run and
	// vice versa: the escape-hatch flags are excluded from the digest.
	cfg.DisableGating = false
	cfg.Router.DisableGating = false
	cfg.Deflect.DisableGating = false
	// NoC sharding is the same kind of speed knob (sharded and
	// sequential runs are bit-identical and checkpoints interchange), so
	// the worker count is excluded too — and stripped from the printed
	// form entirely, keeping digests stable with checkpoints written
	// before the field existed (the golden checkpoint pins this).
	cfg.NocWorkers = 0
	desc := strings.Replace(fmt.Sprintf("%+v", cfg), " NocWorkers:0", "", 1)
	return snapshot.Digest("repro-ckpt", string(mode), workloadDesc, desc)
}

// EncodeCheckpoint serializes the complete co-simulation state —
// coordinator, system simulator, and network backend with in-flight
// packets — into a self-validating checkpoint blob.
func EncodeCheckpoint(cs *core.Cosim, digest uint64) ([]byte, error) {
	return ckpt.Encode(cs, digest)
}

// DecodeCheckpoint restores a checkpoint blob into a co-simulation
// built with the same configuration, mode, and workload that produced
// it (the digest enforces this).
func DecodeCheckpoint(blob []byte, cs *core.Cosim, digest uint64) error {
	return ckpt.Decode(blob, cs, digest)
}

// SaveCheckpoint writes the co-simulation state to path atomically
// (temp file in the same directory, then rename), so an interrupted
// save never corrupts an existing checkpoint.
func SaveCheckpoint(path string, cs *core.Cosim, digest uint64) error {
	return ckpt.Save(path, cs, digest)
}

// LoadCheckpoint restores the co-simulation from a checkpoint file.
func LoadCheckpoint(path string, cs *core.Cosim, digest uint64) error {
	return ckpt.Load(path, cs, digest)
}

// RunResumable runs the co-simulation to the cycle limit with
// checkpointing: when path exists its state is restored first, and a
// checkpoint is rewritten every `every` cycles (0 disables periodic
// saves; the file is still consumed for resume). Because the restored
// state is bit-identical to the saved one, an interrupted and resumed
// run reports the same statistics as an uninterrupted one.
func RunResumable(cs *core.Cosim, limit sim.Cycle, path string, every sim.Cycle, digest uint64) (core.Result, error) {
	return ckpt.RunResumable(cs, limit, path, every, digest)
}
