package repro

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// ConfigDigest fingerprints everything a checkpoint depends on: the
// target-machine configuration, the co-simulation mode, and a caller
// description of the workload. Restoring a snapshot into a
// co-simulation built from a different configuration fails with
// snapshot.ErrConfigMismatch instead of resuming a subtly wrong run.
func ConfigDigest(cfg Config, mode Mode, workloadDesc string) uint64 {
	// Activity gating changes simulator effort, never simulated state
	// (asserted by the gating bit-identity tests), so a checkpoint
	// taken with gating on must restore into a -no-fastforward run and
	// vice versa: the escape-hatch flags are excluded from the digest.
	cfg.DisableGating = false
	cfg.Router.DisableGating = false
	cfg.Deflect.DisableGating = false
	return snapshot.Digest("repro-ckpt", string(mode), workloadDesc, fmt.Sprintf("%+v", cfg))
}

// EncodeCheckpoint serializes the complete co-simulation state —
// coordinator, system simulator, and network backend with in-flight
// packets — into a self-validating checkpoint blob.
func EncodeCheckpoint(cs *core.Cosim, digest uint64) ([]byte, error) {
	e := snapshot.NewEncoder(digest)
	if err := cs.SnapshotTo(e); err != nil {
		return nil, err
	}
	blob := e.Finish()
	cs.ObserveSnapshotBytes(len(blob))
	return blob, nil
}

// DecodeCheckpoint restores a checkpoint blob into a co-simulation
// built with the same configuration, mode, and workload that produced
// it (the digest enforces this).
func DecodeCheckpoint(blob []byte, cs *core.Cosim, digest uint64) error {
	d, err := snapshot.NewDecoder(blob, digest)
	if err != nil {
		return err
	}
	if err := cs.RestoreFrom(d); err != nil {
		return err
	}
	return d.Finish()
}

// SaveCheckpoint writes the co-simulation state to path atomically
// (temp file in the same directory, then rename), so an interrupted
// save never corrupts an existing checkpoint.
func SaveCheckpoint(path string, cs *core.Cosim, digest uint64) error {
	blob, err := EncodeCheckpoint(cs, digest)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpoint restores the co-simulation from a checkpoint file.
func LoadCheckpoint(path string, cs *core.Cosim, digest uint64) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := DecodeCheckpoint(blob, cs, digest); err != nil {
		return fmt.Errorf("restore %s: %w", path, err)
	}
	return nil
}

// RunResumable runs the co-simulation to the cycle limit with
// checkpointing: when path exists its state is restored first, and a
// checkpoint is rewritten every `every` cycles (0 disables periodic
// saves; the file is still consumed for resume). Because the restored
// state is bit-identical to the saved one, an interrupted and resumed
// run reports the same statistics as an uninterrupted one.
func RunResumable(cs *core.Cosim, limit sim.Cycle, path string, every sim.Cycle, digest uint64) (core.Result, error) {
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			if err := LoadCheckpoint(path, cs, digest); err != nil {
				return core.Result{}, err
			}
		} else if !os.IsNotExist(err) {
			return core.Result{}, err
		}
	}
	if every <= 0 || path == "" {
		return cs.Run(limit), nil
	}
	var res core.Result
	for {
		next := cs.Cycle() + every
		if next > limit {
			next = limit
		}
		res = cs.Run(next)
		if res.Finished || res.Stalled || cs.Cycle() >= limit {
			return res, nil
		}
		if err := SaveCheckpoint(path, cs, digest); err != nil {
			return res, err
		}
	}
}
